"""Worker-fleet supervision: one serve process per shard *replica*,
respawned on crash.

Each worker is the unmodified single-process serve app
(``python -m repro serve <replica_dir> --port 0 --shard-id N
--replica-id R``) bound to one replica directory of its shard.  :class:`WorkerHandle` owns one worker: it spawns
the process, scrapes the bound ephemeral address from the startup banner,
and — on any unexpected exit — respawns it with the same deterministic
bounded backoff schedule the build supervisor uses
(:func:`repro.runtime.supervisor.backoff_delay`).  While a worker is down
its :meth:`~WorkerHandle.address` is ``None`` and the router refuses that
shard's traffic with an explicit ``503 Retry-After`` instead of hanging.

:func:`run_fleet` is the ``repro serve-fleet`` entry point: it starts the
workers, binds the frontend router over them, serves until SIGTERM/SIGINT,
and on SIGHUP rolls a generation-checked hot reload across the fleet one
shard at a time.  Drain order on shutdown is router first (no new traffic,
in-flight requests finish), then workers (each drains its own in-flight
requests) — so a clean SIGTERM drops zero requests end to end.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from typing import Callable, Sequence

from repro.runtime.locksan import make_lock
from repro.runtime.supervisor import SupervisorConfig, backoff_delay
from repro.shard.partition import (
    PartitionMap,
    load_partition,
    verify_partition_stores,
)
from repro.store.errors import StoreError

#: A worker must stay up this long (seconds) for its failure streak to
#: reset — a crash loop cannot masquerade as a sequence of fresh failures.
STABLE_UPTIME = 5.0

#: Default budget for the whole fleet to come up in :meth:`Fleet.start`.
START_TIMEOUT = 60.0

FleetEvent = Callable[[str], None]


def _default_event(line: str) -> None:
    print(f"[fleet] {line}", flush=True)


class WorkerHandle:
    """One supervised serve process bound to one shard directory.

    The supervision loop runs on a dedicated thread: spawn, parse the
    banner for the bound address, wait for exit, respawn after
    ``backoff_delay`` unless :meth:`stop` was requested.  ``address()``
    is the router's liveness signal — ``None`` whenever the worker is
    down or still booting.
    """

    def __init__(
        self,
        shard_id: int,
        store_dir: str,
        *,
        host: str = "127.0.0.1",
        worker_args: Sequence[str] = (),
        config: SupervisorConfig | None = None,
        on_event: FleetEvent = _default_event,
        role: str = "shard",
        replica: int = 0,
        label: str | None = None,
    ) -> None:
        if role not in ("shard", "jobs"):
            raise ValueError(f"role must be 'shard' or 'jobs', got {role!r}")
        self.shard_id = int(shard_id)
        self.replica = int(replica)
        self.store_dir = os.fspath(store_dir)
        self.role = role
        if label is not None:
            self._label = label
        else:
            self._label = (
                f"shard {self.shard_id}" if role == "shard" else "jobs worker"
            )
        self._host = host
        self._worker_args = tuple(worker_args)
        self._config = config if config is not None else SupervisorConfig()
        self._on_event = on_event
        self._lock = make_lock("WorkerHandle._lock")
        self._proc: subprocess.Popen | None = None  # guarded-by: _lock
        self._address: str | None = None  # guarded-by: _lock
        self._stopping = False  # guarded-by: _lock
        self._spawns = 0  # guarded-by: _lock
        self._thread: threading.Thread | None = None

    # -- router protocol -----------------------------------------------------

    def address(self) -> str | None:
        """The worker's base URL, or ``None`` while it is down/booting."""
        with self._lock:
            return self._address

    def pid(self) -> int | None:
        with self._lock:
            return self._proc.pid if self._proc is not None else None

    @property
    def spawns(self) -> int:
        with self._lock:
            return self._spawns

    # -- lifecycle -----------------------------------------------------------

    def _argv(self) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            self.store_dir,
            "--host",
            self._host,
            "--port",
            "0",
        ]
        # The jobs worker serves the full index outside the node
        # partition, so it carries no shard id (its /jobs flags arrive
        # via worker_args instead).
        if self.role == "shard":
            argv += ["--shard-id", str(self.shard_id)]
            argv += ["--replica-id", str(self.replica)]
        return argv + list(self._worker_args)

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError(f"{self._label} already started")
        self._thread = threading.Thread(
            target=self._supervise,
            name=f"fleet-{self._label.replace(' ', '-')}",
            daemon=True,
        )
        self._thread.start()

    def _supervise(self) -> None:
        failures = 0
        while True:
            with self._lock:
                if self._stopping:
                    return
            try:
                proc = subprocess.Popen(
                    self._argv(),
                    stdout=subprocess.PIPE,
                    stderr=None,  # worker logs pass through to ours
                    text=True,
                )
            except OSError as exc:
                failures += 1
                self._on_event(
                    f"{self._label} spawn failed ({exc}); "
                    f"retry in {backoff_delay(self._config, failures):g}s"
                )
                time.sleep(backoff_delay(self._config, failures))
                continue
            with self._lock:
                if self._stopping:
                    # stop() raced the spawn: tear the fresh worker down.
                    stopping = True
                else:
                    stopping = False
                    self._proc = proc
                    self._spawns += 1
            if stopping:
                proc.terminate()
                proc.wait()
                if proc.stdout is not None:
                    proc.stdout.close()
                return
            started_at = time.monotonic()
            address = self._read_banner(proc)
            if address is not None:
                with self._lock:
                    self._address = address
                self._on_event(
                    f"{self._label} pid {proc.pid} serving on {address}"
                )
            # Drain stdout to EOF (= worker exit) so the pipe never fills;
            # the worker only writes its banner and a final drain line.
            try:
                if proc.stdout is not None:
                    for _line in proc.stdout:
                        pass
            finally:
                if proc.stdout is not None:
                    proc.stdout.close()
            code = proc.wait()
            uptime = time.monotonic() - started_at
            with self._lock:
                self._address = None
                self._proc = None
                if self._stopping:
                    return
            if uptime >= STABLE_UPTIME:
                failures = 0
            failures += 1
            delay = backoff_delay(self._config, failures)
            self._on_event(
                f"{self._label} pid {proc.pid} exited "
                f"(code {code}, uptime {uptime:.2f}s); respawn in {delay:g}s"
            )
            time.sleep(delay)

    def _read_banner(self, proc: subprocess.Popen) -> str | None:
        """Parse ``... on http://host:port`` from the worker's first line."""
        if proc.stdout is None:
            return None
        banner = proc.stdout.readline()
        if " on http://" not in banner:
            return None
        return banner.rsplit(" on ", 1)[1].strip()

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM the worker (it drains in-flight requests) and join."""
        with self._lock:
            self._stopping = True
            proc = self._proc
        if proc is not None:
            try:
                proc.terminate()
            except ProcessLookupError:
                pass
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive() and proc is not None:
                proc.kill()
                self._thread.join(timeout)


def check_fleet_topology(fleet_dir: str, partition: PartitionMap) -> None:
    """Refuse to start a fleet whose disk state disagrees with its map.

    Shard count and replica count come from the (checksummed) map shape;
    per-replica generation pinning is each store header's
    ``content_digest`` matching the map entry.  Any mismatch — a missing
    replica directory, a rebuilt store, a hand-swapped header — raises a
    single-line actionable error instead of letting the router route
    traffic into the void.
    """
    try:
        verify_partition_stores(fleet_dir, partition)
    except StoreError as exc:
        raise RuntimeError(
            f"fleet topology mismatch under {fleet_dir}: {exc} — re-run "
            f"`repro index shard --shards {partition.num_shards} "
            f"--replicas {partition.replicas}` or restore the replica "
            "with `repro shard repair`"
        ) from exc


class Fleet:
    """All ``num_shards x replicas`` workers of one partitioned fleet dir.

    ``worker_groups[s][r]`` is the handle for replica ``r`` of shard
    ``s`` — the nested shape the replica-aware router consumes;
    ``workers`` is the same set flattened for lifecycle iteration.
    """

    def __init__(
        self,
        fleet_dir: str,
        *,
        host: str = "127.0.0.1",
        worker_args: Sequence[str] = (),
        config: SupervisorConfig | None = None,
        on_event: FleetEvent = _default_event,
    ) -> None:
        self.fleet_dir = os.fspath(fleet_dir)
        self.partition: PartitionMap = load_partition(self.fleet_dir)
        check_fleet_topology(self.fleet_dir, self.partition)
        solo = self.partition.replicas == 1
        self.worker_groups: list[list[WorkerHandle]] = [
            [
                WorkerHandle(
                    entry.shard_id,
                    os.path.join(self.fleet_dir, dir_name),
                    host=host,
                    worker_args=worker_args,
                    config=config,
                    on_event=on_event,
                    replica=replica,
                    # Single-replica fleets keep the v1 "shard N" label so
                    # log scrapers and the chaos gates see stable lines.
                    label=(
                        f"shard {entry.shard_id}"
                        if solo
                        else f"shard {entry.shard_id} replica {replica}"
                    ),
                )
                for replica, dir_name in enumerate(entry.replica_dirs)
            ]
            for entry in self.partition.shards
        ]
        self.workers = [w for group in self.worker_groups for w in group]

    def start(self, timeout: float = START_TIMEOUT) -> None:
        """Start every worker and wait until each has a bound address."""
        for worker in self.workers:
            worker.start()
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            while worker.address() is None:
                if time.monotonic() >= deadline:
                    self.stop()
                    raise RuntimeError(
                        f"shard {worker.shard_id} replica {worker.replica} "
                        f"worker did not come up within {timeout:g}s"
                    )
                time.sleep(0.05)

    def stop(self, timeout: float = 30.0) -> None:
        for worker in self.workers:
            worker.stop(timeout)


def run_fleet(
    fleet_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    deadline: float | None = None,
    retry_after: float = 1.0,
    max_batch: int = 256,
    breaker_threshold: int = 3,
    breaker_reset: float = 2.0,
    worker_args: Sequence[str] = (),
    start_timeout: float = START_TIMEOUT,
    on_event: FleetEvent = _default_event,
    jobs_store: str | None = None,
    jobs_dir: str | None = None,
    hedge_after: float | None = None,
    retry_budget_ratio: float | None = None,
) -> str:
    """``repro serve-fleet``: workers + router until SIGTERM/SIGINT.

    SIGHUP triggers a rolling fleet reload on a helper thread (shard by
    shard, never below N-1 serving).  Shutdown drains the router first,
    then SIGTERMs the workers, so in-flight requests complete end to end.
    Must run on the main thread (signal delivery).

    With ``jobs_store`` a dedicated jobs worker (``serve <store> --jobs``
    over the full, unsharded index) joins the fleet under the same
    supervision, and the router relays ``/jobs/*`` to it.
    """
    from repro.shard.handlers import make_router_server
    from repro.shard.router import ShardRouter

    fleet = Fleet(
        fleet_dir, host=host, worker_args=worker_args, on_event=on_event
    )
    jobs_handle = None
    if jobs_store is not None:
        jobs_args = ["--jobs", "--jobs-dir", jobs_dir or f"{jobs_store}.jobs"]
        jobs_handle = WorkerHandle(
            fleet.partition.num_shards,
            jobs_store,
            host=host,
            worker_args=jobs_args,
            on_event=on_event,
            role="jobs",
        )
    # Fail fast (before any worker spawns) on a partition the router
    # cannot serve, e.g. a world-block split.
    router_kwargs = {}
    if retry_budget_ratio is not None:
        router_kwargs["retry_budget_ratio"] = retry_budget_ratio
    router = ShardRouter(
        fleet.partition,
        fleet.worker_groups,
        deadline=deadline,
        retry_after=retry_after,
        max_batch=max_batch,
        breaker_threshold=breaker_threshold,
        breaker_reset=breaker_reset,
        jobs_endpoint=jobs_handle,
        hedge_after=hedge_after,
        fleet_dir=fleet.fleet_dir,
        **router_kwargs,
    )
    fleet.start(start_timeout)
    if jobs_handle is not None:
        jobs_handle.start()
        up_by = time.monotonic() + start_timeout
        while jobs_handle.address() is None:
            if time.monotonic() >= up_by:
                jobs_handle.stop()
                fleet.stop()
                raise RuntimeError(
                    f"jobs worker did not come up within {start_timeout:g}s"
                )
            time.sleep(0.05)
    try:
        server = make_router_server(router, host, port)
    except OSError:
        if jobs_handle is not None:
            jobs_handle.stop()
        fleet.stop()
        raise
    bound_host, bound_port = server.server_address[:2]
    jobs_note = ", jobs worker" if jobs_handle is not None else ""
    replica_note = (
        f" x {fleet.partition.replicas} replicas"
        if fleet.partition.replicas > 1
        else ""
    )
    print(
        f"routing {fleet_dir} ({fleet.partition.num_shards} shards"
        f"{replica_note}, {fleet.partition.num_nodes} nodes, "
        f"{fleet.partition.num_worlds} worlds{jobs_note}) "
        f"on http://{bound_host}:{bound_port}",
        flush=True,
    )

    def request_shutdown(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    def request_reload(signum, frame):
        def _do() -> None:
            status, payload = router.reload()
            print(
                f"[fleet] rolling reload {payload['status']} "
                f"(http {status}): "
                + ", ".join(
                    f"shard {entry['shard_id']} {entry['status']}"
                    for entry in payload["shards"]
                ),
                file=sys.stderr,
                flush=True,
            )

        threading.Thread(target=_do, daemon=True).start()

    handled = (signal.SIGTERM, signal.SIGINT)
    previous = {s: signal.signal(s, request_shutdown) for s in handled}
    if hasattr(signal, "SIGHUP"):
        previous[signal.SIGHUP] = signal.signal(signal.SIGHUP, request_reload)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        server.server_close()
        if jobs_handle is not None:
            jobs_handle.stop()
        fleet.stop()
    return "serve-fleet: drained router and workers, shut down cleanly"
