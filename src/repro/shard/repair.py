"""Anti-entropy for replicated shard stores: scrub and repair.

The replication contract (see :mod:`repro.shard.partition`) pins every
replica of a shard to the same per-column sha256 digests, recorded in the
v2 ``partition.json``.  Because a cascade-index generation is immutable,
"replica health" is a pure function of bytes on disk:

``scrub``
    Hash every column file of every replica and compare against the
    map-pinned digests (falling back to the replica's own self-checksummed
    header for maps written by format version 1, which carried no column
    pins).  A replica whose header is unreadable, whose ``content_digest``
    disagrees with the map, or whose columns are missing/divergent is
    reported with a per-column problem list — the router uses this to
    quarantine it out of rotation.

``repair``
    Rebuild one replica directory from a scrub-verified healthy peer:
    stage every column into ``<dir>.staging`` (hard-linked where the
    filesystem allows), re-hash the staged files against the pinned
    digests, and only then swap the staging directory into place with
    atomic renames.  A crash at any point leaves either the old directory
    or the fully-verified new one — never a half-copied replica that
    parses.  Workers mmap their columns, so a serving worker keeps its old
    (possibly healthy in-memory) inodes alive across the swap; the router
    decides afterwards whether the worker needs a reload.

Fault sites ``repair.copy`` (per staged column) and ``repair.commit``
(after verification, before the rename) let the chaos gates prove both
properties.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.runtime.faults import maybe_fire
from repro.store.errors import StoreError
from repro.store.fingerprint import digest_file
from repro.store.format import HEADER_NAME, read_header

from .partition import PartitionMap, ShardEntry

PathLike = Union[str, os.PathLike]


class RepairError(RuntimeError):
    """A replica rebuild could not be completed safely.

    Raised when no healthy peer exists to copy from, when a staged column
    fails its digest check (the peer rotted between scrub and copy), or
    when the target coordinates are invalid.  The target directory is
    never touched before every staged byte has verified, so a failed
    repair leaves the fleet exactly as it was.
    """


@dataclass(frozen=True)
class ReplicaScrub:
    """Byte-level verdict on one replica directory."""

    shard_id: int
    replica: int
    dir: str
    problems: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass(frozen=True)
class FleetScrub:
    """Scrub verdicts for every replica of every shard."""

    replicas: tuple[ReplicaScrub, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.replicas)

    @property
    def divergent(self) -> tuple[ReplicaScrub, ...]:
        return tuple(r for r in self.replicas if not r.ok)

    def to_payload(self) -> dict:
        return {
            "ok": self.ok,
            "replicas": [
                {
                    "shard_id": r.shard_id,
                    "replica": r.replica,
                    "dir": r.dir,
                    "ok": r.ok,
                    "problems": list(r.problems),
                }
                for r in self.replicas
            ],
        }


@dataclass(frozen=True)
class RepairReport:
    """What a completed replica rebuild did."""

    shard_id: int
    replica: int
    source_replica: int
    dir: str
    columns: tuple[str, ...]

    def to_payload(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "replica": self.replica,
            "source_replica": self.source_replica,
            "dir": self.dir,
            "columns": list(self.columns),
        }


def _pinned_digests(entry: ShardEntry, store_dir: Path) -> dict[str, str]:
    """Column name -> sha256 this replica must match.

    v2 maps pin the digests themselves; for v1 maps the replica's own
    header is the authority (it is self-checksummed, and its
    ``content_digest`` is separately compared against the map, so a
    swapped-in foreign header still fails the scrub).
    """
    pinned = entry.column_digest_map
    if pinned:
        return pinned
    header = read_header(store_dir)
    return {name: info.sha256 for name, info in header.arrays.items()}


def scrub_replica(
    fleet_dir: PathLike, entry: ShardEntry, replica: int
) -> ReplicaScrub:
    """Hash-verify one replica against the partition map's byte contract."""
    root = Path(os.fspath(fleet_dir))
    dir_name = entry.replica_dirs[replica]
    store_dir = root / dir_name
    problems: list[str] = []
    if not store_dir.is_dir():
        return ReplicaScrub(
            shard_id=entry.shard_id,
            replica=replica,
            dir=dir_name,
            problems=("missing: replica directory does not exist",),
        )
    try:
        header = read_header(store_dir)
    except StoreError as exc:
        problems.append(f"header: {exc}")
        header = None
    if header is not None and header.content_digest != entry.content_digest:
        problems.append(
            f"header: content digest {header.content_digest} does not match "
            f"partition map pin {entry.content_digest}"
        )
    try:
        digests = _pinned_digests(entry, store_dir)
    except StoreError:
        digests = {}
    for name in sorted(digests):
        want = digests[name]
        column = store_dir / f"{name}.npy"
        if not column.is_file():
            problems.append(f"{name}: column file is missing")
            continue
        actual = digest_file(column)
        if actual != want:
            problems.append(
                f"{name}: sha256 {actual} does not match pinned {want}"
            )
    return ReplicaScrub(
        shard_id=entry.shard_id,
        replica=replica,
        dir=dir_name,
        problems=tuple(problems),
    )


def scrub_fleet(fleet_dir: PathLike, partition: PartitionMap) -> FleetScrub:
    """Scrub every replica of every shard, in deterministic order."""
    verdicts = [
        scrub_replica(fleet_dir, entry, replica)
        for entry in partition.shards
        for replica in range(len(entry.replica_dirs))
    ]
    return FleetScrub(replicas=tuple(verdicts))


def repair_replica(
    fleet_dir: PathLike,
    partition: PartitionMap,
    shard_id: int,
    replica: int,
    *,
    source_replica: Optional[int] = None,
) -> RepairReport:
    """Rebuild replica ``replica`` of ``shard_id`` from a healthy peer.

    Verify-then-atomic-rename: every column is staged and re-hashed
    against the pinned digests before the target directory is replaced.
    Raises :class:`RepairError` if no scrub-clean peer exists or staging
    fails verification; the target is untouched in every failure case.
    """
    if not 0 <= shard_id < partition.num_shards:
        raise RepairError(
            f"shard {shard_id} out of range (fleet has "
            f"{partition.num_shards} shards)"
        )
    entry = partition.shards[shard_id]
    num_replicas = len(entry.replica_dirs)
    if not 0 <= replica < num_replicas:
        raise RepairError(
            f"replica {replica} out of range (shard {shard_id} has "
            f"{num_replicas} replicas)"
        )
    root = Path(os.fspath(fleet_dir))

    if source_replica is not None:
        if not 0 <= source_replica < num_replicas or source_replica == replica:
            raise RepairError(
                f"source replica {source_replica} is not a peer of "
                f"shard {shard_id} replica {replica}"
            )
        candidates = [source_replica]
    else:
        candidates = [r for r in range(num_replicas) if r != replica]
    if not candidates:
        raise RepairError(
            f"shard {shard_id} has no peer replicas to repair from "
            "(re-partition with --replicas >= 2)"
        )
    source = None
    for candidate in candidates:
        if scrub_replica(root, entry, candidate).ok:
            source = candidate
            break
    if source is None:
        raise RepairError(
            f"shard {shard_id} replica {replica}: no healthy peer replica "
            f"(checked {candidates}); rebuild the shard with "
            "`repro index shard` instead"
        )

    src_dir = root / entry.replica_dirs[source]
    target = root / entry.replica_dirs[replica]
    digests = _pinned_digests(entry, src_dir)
    staging = root / (entry.replica_dirs[replica] + ".staging")
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    try:
        for name in sorted(digests):
            maybe_fire("repair.copy", key=name)
            src_file = src_dir / f"{name}.npy"
            dst_file = staging / f"{name}.npy"
            try:
                os.link(src_file, dst_file)
            except OSError:
                shutil.copy2(src_file, dst_file)
            actual = digest_file(dst_file)
            if actual != digests[name]:
                raise RepairError(
                    f"staged column {name} hashed {actual}, pinned digest is "
                    f"{digests[name]} — peer replica {source} diverged "
                    "mid-repair, aborting without touching the target"
                )
        shutil.copy2(src_dir / HEADER_NAME, staging / HEADER_NAME)
        staged_header = read_header(staging)
        if staged_header.content_digest != entry.content_digest:
            raise RepairError(
                f"staged header content digest {staged_header.content_digest} "
                f"does not match partition map pin {entry.content_digest}"
            )
        maybe_fire("repair.commit", key=f"{shard_id}/{replica}")
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise

    discard = root / (entry.replica_dirs[replica] + ".discard")
    if discard.exists():
        shutil.rmtree(discard)
    if target.exists():
        os.rename(target, discard)
    os.rename(staging, target)
    shutil.rmtree(discard, ignore_errors=True)
    return RepairReport(
        shard_id=shard_id,
        replica=replica,
        source_replica=source,
        dir=entry.replica_dirs[replica],
        columns=tuple(sorted(digests)),
    )
