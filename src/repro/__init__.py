"""repro — reproduction of "Spheres of Influence for More Effective Viral
Marketing" (Mehmood, Bonchi, García-Soriano; SIGMOD 2016).

Public API tour:

* :class:`repro.ProbabilisticDigraph` — the uncertain-graph data model.
* :class:`repro.CascadeIndex` — Algorithm 1's sampled-world index.
* :class:`repro.TypicalCascadeComputer` / :func:`repro.compute_typical_cascade`
  — Algorithm 2: spheres of influence via sampling + Jaccard median.
* :func:`repro.infmax_std` / :func:`repro.infmax_tc` — the two influence
  maximisers of Section 6.4.
* :mod:`repro.store` — the persistent memory-mapped index store
  (:meth:`CascadeIndex.save` / :meth:`CascadeIndex.load`,
  :func:`repro.build_index`, :func:`repro.append_worlds`).
* :mod:`repro.datasets` — the 12 benchmark settings.
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.builder import GraphBuilder
from repro.cascades.index import CascadeIndex
from repro.cascades.ic import sample_cascade, sample_cascades, simulate_ic
from repro.core.sphere import SphereOfInfluence
from repro.core.store import SphereStore
from repro.core.typical_cascade import TypicalCascadeComputer, compute_typical_cascade
from repro.core.stability import seed_set_stability, sphere_stability
from repro.store import append_worlds, build_index
from repro.store.provenance import IndexProvenance
from repro.median.chierichetti import jaccard_median, MedianResult
from repro.median.samples import SampleCollection
from repro.median.jaccard import jaccard_distance, jaccard_similarity
from repro.influence.greedy_std import infmax_std, infmax_std_mc
from repro.influence.greedy_tc import infmax_tc, infmax_tc_from_spheres
from repro.influence.spread import SpreadOracle, evaluate_spread_curve

__version__ = "1.0.0"

__all__ = [
    "ProbabilisticDigraph",
    "GraphBuilder",
    "CascadeIndex",
    "sample_cascade",
    "sample_cascades",
    "simulate_ic",
    "SphereOfInfluence",
    "SphereStore",
    "IndexProvenance",
    "append_worlds",
    "build_index",
    "TypicalCascadeComputer",
    "compute_typical_cascade",
    "seed_set_stability",
    "sphere_stability",
    "jaccard_median",
    "MedianResult",
    "SampleCollection",
    "jaccard_distance",
    "jaccard_similarity",
    "infmax_std",
    "infmax_std_mc",
    "infmax_tc",
    "infmax_tc_from_spheres",
    "SpreadOracle",
    "evaluate_spread_curve",
]
