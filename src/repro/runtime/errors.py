"""Exception types of the fault-tolerant runtime.

Three failure families, three types:

* :class:`InjectedFault` — a failure the deterministic harness
  (:mod:`repro.runtime.faults`) fired on purpose.  Tests arm a plan,
  production code hits the injection point, and the recovery path under
  test runs for real.
* :class:`SupervisorError` — the supervised pool exhausted every recovery
  lever (per-chunk retries, pool restarts, serial fallback) and still
  could not finish; the original cause is chained.
* :class:`CheckpointError` — a checkpoint directory is unusable: its
  journal references a different index, or a journaled shard fails
  validation.  Subclasses :class:`~repro.store.errors.StoreError` so the
  CLI's one-line error handling covers it for free.
"""

from __future__ import annotations

from repro.store.errors import StoreError


class InjectedFault(RuntimeError):
    """A deliberate failure fired by the fault-injection harness."""


class SupervisorError(RuntimeError):
    """Supervised execution failed after every retry and fallback."""


class CheckpointError(StoreError):
    """A checkpoint directory cannot be trusted for resuming."""
