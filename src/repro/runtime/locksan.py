"""Runtime lock sanitizer: validate lock discipline on real interleavings.

The static REP7xx pass (``python -m repro.analysis --project``) proves
properties of the *model* it can build — annotated attributes, lexically
visible ``with`` regions, resolvable calls.  Callbacks, ducks and dynamic
dispatch escape it.  This module closes the gap at runtime: when
``REPRO_LOCKSAN=1`` is set, every lock the serving stack creates through
:func:`make_lock` / :func:`make_condition` is wrapped so the sanitizer
observes each acquire/release and maintains:

* a **per-thread held stack** — which named locks this thread holds, in
  acquisition order;
* a global **lock-order graph** — an edge ``A -> B`` is recorded the first
  time any thread acquires ``B`` while holding ``A``.  A cycle in this
  graph means two threads can deadlock under an adversarial schedule even
  if this run happened not to; it is reported immediately, with both
  conflicting orders.
* **guarded-by violations** — production code asserts lock ownership at
  chosen points via :func:`assert_held`; with the sanitizer off the
  assertion is free, with it on a miss is recorded.

Reports accumulate in-process; CI runs the 16-thread hammer and the chaos
gates with ``REPRO_LOCKSAN=1`` and fails if :func:`report` is non-empty
(see the autouse fixture in ``tests/serve/conftest.py``).

Locks are *named by role*, e.g. ``"LRUCache._lock"`` — one name per
class-level attribute, shared by every instance.  Edges between two locks
of the same name are therefore skipped (sibling instances of one class
need no global order), which matches the static checker's convention.

Zero overhead when disabled: :func:`make_lock` returns a plain
``threading.Lock`` unless the sanitizer is active *at construction time*,
so the steady-state serving path pays nothing — not even an ``if``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Union

#: Environment toggle; any non-empty value activates the sanitizer.
ENV_VAR = "REPRO_LOCKSAN"


def enabled() -> bool:
    """True when the sanitizer is active (env var or an open scope)."""
    return bool(_FORCED) or bool(os.environ.get(ENV_VAR))


class _State:
    """Process-wide sanitizer state.

    Internal bookkeeping uses a plain (untracked) lock; the sanitizer must
    never observe its own synchronisation.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._local = threading.local()
        # name -> set of successor names (first-observed acquisition order).
        self._edges: dict[str, set[str]] = {}
        self._violations: list[str] = []
        # Names ever constructed as sanitized locks.  Deliberately *not*
        # cleared by reset(): assert_held must stay a no-op for locks that
        # were built before a test scope opened (plain primitives).
        self._tracked: set[str] = set()

    # -- per-thread stack ----------------------------------------------------

    def _stack(self) -> list[tuple[str, int]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held_names(self) -> tuple[str, ...]:
        """Names of locks the calling thread currently holds."""
        return tuple(name for name, _ in self._stack())

    # -- event recording -----------------------------------------------------

    def track(self, name: str) -> None:
        with self._mutex:
            self._tracked.add(name)

    def is_tracked(self, name: str) -> bool:
        with self._mutex:
            return name in self._tracked

    def did_acquire(self, name: str, lock_id: int) -> None:
        stack = self._stack()
        held = [h for h, _ in stack if h != name]
        with self._mutex:
            for prior in held:
                self._edges.setdefault(prior, set()).add(name)
                cycle = self._find_path(name, prior)
                if cycle is not None:
                    self._violations.append(
                        "lock-order-cycle: acquired "
                        f"{name!r} while holding {prior!r}, but the order "
                        f"{' -> '.join(cycle)} was already observed "
                        "(potential deadlock)"
                    )
        stack.append((name, lock_id))

    def did_release(self, name: str, lock_id: int) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == (name, lock_id):
                del stack[i]
                return
        with self._mutex:
            self._violations.append(
                f"unbalanced-release: {name!r} released by a thread that "
                "does not hold it"
            )

    def _find_path(self, start: str, goal: str) -> list[str] | None:
        """DFS path start -> ... -> goal in the edge graph (else None).

        Called with ``self._mutex`` held.
        """
        seen = {start}
        path = [start]

        def walk(node: str) -> bool:
            if node == goal:
                return True
            for succ in sorted(self._edges.get(node, ())):
                if succ in seen:
                    continue
                seen.add(succ)
                path.append(succ)
                if walk(succ):
                    return True
                path.pop()
            return False

        return path + [goal] if start != goal and walk(start) else None

    def record_violation(self, message: str) -> None:
        with self._mutex:
            self._violations.append(message)

    # -- reporting -----------------------------------------------------------

    def report(self) -> list[str]:
        with self._mutex:
            return list(self._violations)

    def reset(self) -> None:
        """Clear observations (edges + violations), keep tracked names."""
        with self._mutex:
            self._edges.clear()
            self._violations.clear()


_STATE = _State()

#: Non-zero while a :func:`sanitizer_scope` is open (tests force the
#: sanitizer on without touching the process environment).
_FORCED = 0


class _SanLock:
    """A ``threading.Lock`` that reports acquire/release to the sanitizer.

    Tracks the owning thread id so it can implement the private
    ``_is_owned`` protocol ``threading.Condition`` relies on — the
    Condition's ``wait`` releases and re-acquires the underlying lock
    through ``release()``/``acquire()``, so the sanitizer's records stay
    balanced across waits with no special-casing.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._inner = threading.Lock()
        self._owner: int | None = None
        _STATE.track(name)

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            _STATE.did_acquire(self._name, id(self))
        return acquired

    def release(self) -> None:
        _STATE.did_release(self._name, id(self))
        self._owner = None
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def _is_owned(self) -> bool:
        # Condition-protocol hook (also handy in tests/assertions).
        return self._owner == threading.get_ident()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked() else "unlocked"
        return f"<_SanLock {self._name!r} {state}>"


LockLike = Union[threading.Lock, _SanLock]


def make_lock(name: str) -> LockLike:
    """A mutex for role ``name`` — sanitized iff the sanitizer is active.

    The decision happens at construction: the serving stack creates its
    locks in ``__init__``, so enabling ``REPRO_LOCKSAN`` after a service
    is built does not (and must not) retrofit tracking onto live locks.
    """
    if enabled():
        return _SanLock(name)
    return threading.Lock()


def make_condition(name: str) -> threading.Condition:
    """A condition variable whose underlying mutex is role-named."""
    if enabled():
        return threading.Condition(lock=_SanLock(name))  # type: ignore[arg-type]
    return threading.Condition()


def assert_held(name: str) -> None:
    """Record a guarded-by violation if this thread does not hold ``name``.

    Free when the sanitizer is inactive, and inert for locks constructed
    before the sanitizer was enabled (they are plain primitives the
    sanitizer never saw).  Production code sprinkles this at points the
    static pass covers with ``# requires-lock`` annotations, so the two
    layers check the same contract.
    """
    if not enabled():
        return
    if not _STATE.is_tracked(name):
        return
    if name not in _STATE.held_names():
        _STATE.record_violation(
            f"guarded-by: {name!r} not held at an assert_held checkpoint "
            f"(thread holds: {list(_STATE.held_names()) or 'nothing'})"
        )


def held_names() -> tuple[str, ...]:
    """Names of sanitized locks the calling thread holds right now."""
    return _STATE.held_names()


def report() -> list[str]:
    """All violations recorded since the last :func:`reset`."""
    return _STATE.report()


def reset() -> None:
    """Drop recorded edges and violations (tracked names persist)."""
    _STATE.reset()


@contextmanager
def sanitizer_scope() -> Iterator[None]:
    """Force the sanitizer on for the block, starting from a clean slate.

    Tests use this instead of the environment variable so that locks
    constructed inside the block are tracked regardless of how pytest was
    invoked.  State is reset on entry and exit; scopes may nest.
    """
    global _FORCED
    _FORCED += 1
    _STATE.reset()
    try:
        yield
    finally:
        _FORCED -= 1
        _STATE.reset()
