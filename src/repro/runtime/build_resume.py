"""Resumable, batched construction of a persistent cascade-index store.

A monolithic ``index build`` over thousands of sampled worlds is
all-or-nothing: a crash at world 9,000 of 10,000 discards everything.  The
resumable build instead commits the store in *batches*: the first batch is
written as a complete (small) store, every later batch rides on
:func:`~repro.store.append.append_worlds` — whose staged-temp-then-swap
discipline means a crash mid-batch leaves the previous batch's valid store
on disk, never a torn one.

``--resume`` is then trivial and *provably* exact: world ``i`` is a pure
function of ``(seed entropy, i)``, and an appended store is bit-identical
to a from-scratch build of the same world count (``tests/store/test_append``
pins this), so a killed-then-resumed build has the same content digest as
an uninterrupted one.  Resume validates the on-disk header first — graph
fingerprint, reduction flag and seed entropy must all match the requested
build, else :class:`~repro.store.errors.StoreError`.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sampling import WorldSampler
from repro.runtime.supervisor import SupervisorConfig
from repro.store.append import append_worlds
from repro.store.errors import StoreError, StoreFormatError
from repro.store.fingerprint import graph_fingerprint
from repro.store.format import ARRAY_DTYPES, check_files, read_header
from repro.store.header import IndexStoreHeader
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

#: Dir entries a crashed first batch may leave behind (safe to clear).
_DEBRIS_SUFFIXES = (".npy", ".npy.tmp", ".json.tmp")


def _is_build_debris(root: Path) -> bool:
    """True iff ``root`` holds only artefacts a crashed first batch writes.

    A first-batch crash dies before the header lands, leaving bare column
    files.  Those (and staging leftovers) are recognisable by name; anything
    else means the directory is not ours to clear.
    """
    known = {f"{name}.npy" for name in ARRAY_DTYPES}
    known.update(f"{name}.npy.tmp" for name in ARRAY_DTYPES)
    known.add("header.json.tmp")
    for entry in root.iterdir():
        if entry.name not in known:
            return False
    return True


def _clear_debris(root: Path) -> None:
    for entry in sorted(root.iterdir()):
        entry.unlink()
    root.rmdir()  # write_index refuses an existing directory


def resumable_index_build(
    graph: ProbabilisticDigraph,
    num_samples: int,
    *,
    seed: SeedLike,
    out: str | os.PathLike,
    reduce: bool = True,
    n_jobs: int | None = 1,
    batch_size: int = 0,
    resume: bool = False,
    overwrite: bool = False,
    supervisor: SupervisorConfig | None = None,
) -> IndexStoreHeader:
    """Build (or finish building) the store at ``out``; returns its header.

    ``batch_size`` is the commit granularity: ``0`` means one monolithic
    batch (no mid-build durability, same as a plain build-and-save).  With
    ``resume=True`` an existing store at ``out`` is validated against
    ``(graph, seed, reduce)`` and extended from its recorded world count;
    the result is digest-identical to an uninterrupted build.  ``seed``
    must not be ``None`` — a resumable build is meaningless without a
    recorded seed to resume from.
    """
    check_positive_int(num_samples, "num_samples")
    if batch_size < 0:
        raise ValueError(f"batch_size must be non-negative, got {batch_size}")
    if seed is None:
        raise ValueError(
            "a resumable build needs an explicit seed; world i must be "
            "re-derivable as (seed entropy, i) after a crash"
        )
    root = Path(os.fspath(out))
    sampler = WorldSampler(graph, seed)
    entropy = sampler.seed_entropy
    batch = batch_size or num_samples

    done = 0
    if root.exists() and resume:
        try:
            header = read_header(root)
        except StoreFormatError:
            if _is_build_debris(root):
                _clear_debris(root)  # crashed before the first header landed
            else:
                raise
        else:
            check_files(root, header)
            _check_resumable(header, graph, entropy, reduce, num_samples, root)
            done = header.num_worlds
            if done == num_samples:
                return header

    if done == 0:
        from repro.cascades.index import CascadeIndex
        from repro.store.build import sampled_condensations
        from repro.store.format import write_index

        first = min(batch, num_samples)
        condensations = sampled_condensations(
            graph,
            first,
            entropy=entropy,
            reduce=reduce,
            n_jobs=n_jobs,
            supervisor=supervisor,
        )
        index = CascadeIndex(graph, condensations, reduced=reduce, sampler=sampler)
        write_index(index, root, overwrite=overwrite)
        done = first

    while done < num_samples:
        step = min(batch, num_samples - done)
        header = append_worlds(root, step, n_jobs=n_jobs, supervisor=supervisor)
        done = header.num_worlds

    return read_header(root)


def _check_resumable(
    header: IndexStoreHeader,
    graph: ProbabilisticDigraph,
    entropy,
    reduce: bool,
    num_samples: int,
    root: Path,
) -> None:
    fingerprint = graph_fingerprint(graph)
    if header.graph_fingerprint != fingerprint:
        raise StoreError(
            f"cannot resume {root}: it was built from a different graph "
            f"(store {header.graph_fingerprint}, requested {fingerprint})"
        )
    if header.reduced != reduce:
        raise StoreError(
            f"cannot resume {root}: reduction flag differs "
            f"(store reduced={header.reduced}, requested reduced={reduce})"
        )
    if header.seed_entropy != entropy:
        raise StoreError(
            f"cannot resume {root}: seed entropy differs "
            f"(store {header.seed_entropy}, requested {entropy}); resuming "
            "would splice worlds from two different sample streams"
        )
    if header.num_worlds > num_samples:
        raise StoreError(
            f"cannot resume {root}: it already holds {header.num_worlds} "
            f"worlds, more than the requested {num_samples}"
        )
