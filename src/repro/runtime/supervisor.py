"""Chunk-granular supervision of process-pool work.

``ProcessPoolExecutor.map`` is all-or-nothing: one OOM-killed worker raises
``BrokenProcessPool`` and the entire computation is lost.  This module
replaces it with a submit/retry loop built around one assumption the caller
must guarantee — **every chunk is a pure function of its payload** — which
is exactly the cascade-index build's contract (a chunk is determined by
``(seed entropy, world range)``).  Under that contract every recovery
action below preserves bit-identical output, because results are always
reassembled in payload order and a re-executed chunk returns the same
value:

* a chunk whose worker raised is resubmitted, with bounded exponential
  backoff, up to ``max_chunk_retries`` times, then executed serially
  in-process (a poison chunk degrades gracefully instead of burning pools);
* a broken pool (crashed/OOM-killed worker) is replaced by a fresh pool
  and every unfinished chunk is resubmitted;
* a pool making no progress for ``stall_timeout`` seconds is presumed hung,
  its workers are terminated, and a fresh pool takes over;
* after ``max_pool_restarts`` pool replacements the supervisor stops
  trusting multiprocessing entirely and finishes the remaining chunks
  serially in the parent process.

Retry attempt numbers are forwarded to the worker function, which lets the
deterministic fault harness (:mod:`repro.runtime.faults`) target "attempt 0
of chunk 3" precisely — and means an injected crash plan naturally stops
firing once its attempts are spent.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.runtime.errors import SupervisorError

T = TypeVar("T")
R = TypeVar("R")

#: Grace period when joining terminated worker processes.
_TERMINATE_JOIN_SECONDS = 5.0


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervised execution loop.

    ``stall_timeout`` is the per-wait progress deadline: if no chunk
    completes for that many seconds the pool is presumed hung and recycled
    (``None`` disables the deadline).  ``max_chunk_retries`` bounds pool
    re-submissions per chunk before the chunk falls back to in-process
    execution.  Backoff before retry ``k`` is
    ``min(backoff_base * 2**(k-1), backoff_max)`` seconds — deterministic,
    no jitter, so supervised runs stay reproducible.
    """

    stall_timeout: float | None = None
    max_chunk_retries: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ValueError(
                f"stall_timeout must be positive or None, got {self.stall_timeout}"
            )
        if self.max_chunk_retries < 0:
            raise ValueError(
                f"max_chunk_retries must be non-negative, got {self.max_chunk_retries}"
            )
        if self.max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be non-negative, got {self.max_pool_restarts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff_base and backoff_max must be non-negative")


#: Defaults: three retries per chunk, two pool restarts, no stall deadline.
DEFAULT_CONFIG = SupervisorConfig()


def backoff_delay(config: SupervisorConfig, failures: int) -> float:
    """Deterministic bounded exponential backoff before retry ``failures``."""
    if failures <= 0:
        return 0.0
    return min(config.backoff_base * (2.0 ** (failures - 1)), config.backoff_max)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: cancel queued work, kill live workers."""
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.terminate()
    for process in processes:
        process.join(timeout=_TERMINATE_JOIN_SECONDS)


def supervise_chunks(
    payloads: Sequence[T],
    pool_factory: Callable[[], ProcessPoolExecutor],
    task_fn: Callable[[T, int], R],
    serial_fn: Callable[[T, int], R],
    *,
    config: SupervisorConfig | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> list[R]:
    """Run ``task_fn(payload, attempt)`` for every payload, fault-tolerantly.

    ``task_fn`` must be picklable (it executes in pool workers);
    ``serial_fn`` is its in-process equivalent, used for poison chunks and
    for the post-pool serial fallback.  Both receive the chunk's current
    attempt number.  Results come back in payload order; chunk purity makes
    the output independent of scheduling, crashes and retries.

    Raises :class:`SupervisorError` only via the serial path — once a chunk
    runs in-process, its exception is real and propagates wrapped.
    """
    if config is None:
        config = DEFAULT_CONFIG
    results: list[R | None] = [None] * len(payloads)
    finished = [False] * len(payloads)
    attempts = [0] * len(payloads)
    pool_failures = 0
    pool: ProcessPoolExecutor | None = None
    serial_mode = False
    try:
        while True:
            remaining = [i for i in range(len(payloads)) if not finished[i]]
            if not remaining:
                break
            if serial_mode:
                for idx in remaining:
                    results[idx] = _run_serial(serial_fn, payloads[idx], attempts[idx])
                    finished[idx] = True
                continue
            # Chunks that exhausted their pool budget degrade to in-process
            # execution before the next pool epoch.
            for idx in remaining:
                if attempts[idx] > config.max_chunk_retries:
                    results[idx] = _run_serial(serial_fn, payloads[idx], attempts[idx])
                    finished[idx] = True
            remaining = [i for i in remaining if not finished[i]]
            if not remaining:
                continue
            if pool is None:
                pool = pool_factory()
            broke = _pool_epoch(
                pool, payloads, task_fn, results, finished, attempts, remaining,
                config, sleep,
            )
            if broke:
                _terminate_pool(pool)
                pool = None
                for idx in range(len(payloads)):
                    if not finished[idx]:
                        attempts[idx] += 1
                pool_failures += 1
                if pool_failures > config.max_pool_restarts:
                    serial_mode = True
                else:
                    sleep(backoff_delay(config, pool_failures))
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    return results  # type: ignore[return-value]  # every slot is filled above


def _run_serial(serial_fn: Callable[[T, int], R], payload: T, attempt: int) -> R:
    try:
        return serial_fn(payload, attempt)
    except Exception as exc:
        raise SupervisorError(
            f"chunk failed even in serial fallback (attempt {attempt}): {exc}"
        ) from exc


def _pool_epoch(
    pool: ProcessPoolExecutor,
    payloads: Sequence[T],
    task_fn: Callable[[T, int], R],
    results: list,
    finished: list[bool],
    attempts: list[int],
    remaining: Sequence[int],
    config: SupervisorConfig,
    sleep: Callable[[float], None],
) -> bool:
    """One pool lifetime: submit remaining chunks, harvest until done or broken.

    Returns ``True`` when the pool must be replaced (a worker died or the
    pool stalled); per-chunk worker exceptions are retried inside the epoch
    without recycling the pool.
    """
    futures: dict[Future, int] = {}
    try:
        for idx in remaining:
            futures[pool.submit(task_fn, payloads[idx], attempts[idx])] = idx
    except (BrokenProcessPool, RuntimeError):
        return True
    while futures:
        done, _ = wait(
            set(futures), timeout=config.stall_timeout, return_when=FIRST_COMPLETED
        )
        if not done:
            return True  # no progress within the stall deadline: presumed hung
        for future in done:
            idx = futures.pop(future)
            try:
                results[idx] = future.result()
                finished[idx] = True
            except BrokenProcessPool:
                return True
            except Exception:
                attempts[idx] += 1
                if attempts[idx] > config.max_chunk_retries:
                    # Out of pool budget: leave it unfinished — the outer
                    # loop degrades it to in-process execution.
                    continue
                sleep(backoff_delay(config, attempts[idx]))
                try:
                    futures[pool.submit(task_fn, payloads[idx], attempts[idx])] = idx
                except (BrokenProcessPool, RuntimeError):
                    return True
    return False
