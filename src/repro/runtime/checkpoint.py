"""Crash-safe journaled checkpoints for the all-nodes sphere sweep.

Algorithm 2 over a million-node graph runs for hours; a preemption at hour
three must not discard hours one and two.  A :class:`SphereCheckpoint`
turns the sweep into a sequence of durable *shards*:

* every ``checkpoint_every`` computed spheres are written to a shard file
  (a regular :class:`~repro.core.store.SphereStore` ``.npz``) — staged to a
  temp name and ``os.replace``d into place, the same discipline as
  :func:`~repro.store.append.append_worlds`;
* ``journal.json`` — rewritten atomically after each shard — is the source
  of truth: it lists every durable shard with its byte size and SHA-256,
  plus the :class:`~repro.store.provenance.IndexProvenance` of the index
  the spheres came from.

Crash anywhere and the invariant holds: journaled shards are complete and
validated, anything else on disk is garbage to be overwritten.  A resumed
sweep loads the journaled spheres, recomputes only the rest, and — because
each node's sphere is a pure function of the index — produces a
:class:`SphereStore` whose digest is identical to an uninterrupted run's.

Resume refuses to mix indexes: the journal's provenance must match the
live index's content digest, else :class:`CheckpointError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.runtime.errors import CheckpointError, InjectedFault
from repro.runtime.faults import take_fault
from repro.store.fingerprint import digest_file, digest_text
from repro.store.provenance import IndexProvenance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sphere import SphereOfInfluence

JOURNAL_NAME = "journal.json"
JOURNAL_MAGIC = "repro-sphere-checkpoint"
JOURNAL_VERSION = 1

#: Injection site torn by the fault harness to exercise crash recovery.
FAULT_SITE_SHARD = "checkpoint.shard"


def _shard_name(position: int) -> str:
    return f"shard-{position:05d}.npz"


class SphereCheckpoint:
    """One checkpoint directory: journal + shard files for a sphere sweep."""

    def __init__(self, directory: str | os.PathLike, provenance: IndexProvenance) -> None:
        self._root = Path(os.fspath(directory))
        self._provenance = provenance
        self._num_shards = 0

    @property
    def directory(self) -> Path:
        return self._root

    @property
    def num_shards(self) -> int:
        """Journaled shard count (advances as :meth:`write_shard` commits)."""
        return self._num_shards

    # -- journal ------------------------------------------------------------

    def _journal_path(self) -> Path:
        return self._root / JOURNAL_NAME

    def _read_journal(self) -> list[dict] | None:
        """Parse and validate the journal; ``None`` when none exists yet."""
        path = self._journal_path()
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{path} is not readable JSON ({exc}); the checkpoint cannot "
                "be trusted — remove the directory to restart from scratch"
            ) from exc
        if not isinstance(payload, dict) or payload.get("magic") != JOURNAL_MAGIC:
            raise CheckpointError(f"{path} is not a sphere-checkpoint journal")
        if payload.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint journal version {payload.get('version')!r}"
            )
        recorded = payload.pop("checksum", None)
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if recorded is None or digest_text(body) != recorded:
            raise CheckpointError(
                f"{path} fails its self-checksum — the journal was corrupted "
                "or hand-edited; remove the directory to restart from scratch"
            )
        journal_prov = IndexProvenance.from_json(payload["provenance"])
        if not journal_prov.matches(self._provenance):
            raise CheckpointError(
                "checkpoint belongs to a different cascade index "
                f"(journal digest {journal_prov.content_digest}, live index "
                f"{self._provenance.content_digest}); refusing to resume"
            )
        shards = payload["shards"]
        if not isinstance(shards, list):
            raise CheckpointError(f"{path}: 'shards' must be a list")
        return shards

    def _write_journal(self, shards: list[dict]) -> None:
        payload = {
            "magic": JOURNAL_MAGIC,
            "version": JOURNAL_VERSION,
            "provenance": self._provenance.to_json(),
            "shards": shards,
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        payload["checksum"] = digest_text(body)
        tmp = self._root / (JOURNAL_NAME + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=2))
        os.replace(tmp, self._journal_path())

    # -- recovery -----------------------------------------------------------

    def load(self) -> dict[int, "SphereOfInfluence"]:
        """Spheres recovered from every journaled shard.

        Fresh directory (no journal) → ``{}``.  Shard files on disk that the
        journal does not mention are debris from a torn write and are
        ignored (the sweep overwrites them).  A *journaled* shard that is
        missing or fails its size/SHA-256 check is real corruption:
        :class:`CheckpointError`, because a checkpoint that lies once cannot
        be trusted at all.
        """
        from repro.core.store import SphereStore

        shards = self._read_journal()
        if shards is None:
            self._num_shards = 0
            return {}
        spheres: dict[int, "SphereOfInfluence"] = {}
        for record in shards:
            name = str(record["name"])
            path = self._root / name
            if not path.is_file():
                raise CheckpointError(
                    f"journaled shard {name} is missing from {self._root}"
                )
            size = int(path.stat().st_size)
            if size != int(record["num_bytes"]):
                raise CheckpointError(
                    f"journaled shard {name} is {size} bytes, journal records "
                    f"{record['num_bytes']} — the checkpoint is corrupted"
                )
            if digest_file(path) != str(record["sha256"]):
                raise CheckpointError(
                    f"journaled shard {name} fails its SHA-256 check — the "
                    "checkpoint is corrupted"
                )
            shard = SphereStore.load(path)
            for node, sphere in shard.items():
                spheres[int(node)] = sphere
        self._num_shards = len(shards)
        return spheres

    # -- durability ---------------------------------------------------------

    def write_shard(self, spheres: Mapping[int, "SphereOfInfluence"]) -> str:
        """Persist one batch of spheres durably; returns the shard name.

        Stage-then-rename for the shard, then the journal (itself atomic)
        commits it.  The deterministic fault harness can tear the rename
        (site ``"checkpoint.shard"``): the truncated file lands under the
        final name but is never journaled, which is exactly the torn state
        :meth:`load` must survive.
        """
        from repro.core.store import SphereStore

        if not spheres:
            raise ValueError("a checkpoint shard needs at least one sphere")
        self._root.mkdir(parents=True, exist_ok=True)
        shards = self._read_journal() or []
        name = _shard_name(len(shards))
        final = self._root / name
        tmp = self._root / (name + ".tmp")
        # Stage via an open handle: np.savez would append ".npz" to a bare
        # temp *path*, breaking the stage-then-rename pairing.
        with open(tmp, "wb") as handle:
            SphereStore(spheres, provenance=self._provenance).save(handle)
        spec = take_fault(FAULT_SITE_SHARD, key=name)
        if spec is not None and spec.kind == "torn":
            payload = tmp.read_bytes()
            final.write_bytes(payload[: len(payload) // 2])
            tmp.unlink()
            raise InjectedFault(
                f"injected torn shard write at {FAULT_SITE_SHARD!r} (key={name!r})"
            )
        if spec is not None:
            raise InjectedFault(
                f"injected {spec.kind} at {FAULT_SITE_SHARD!r} (key={name!r})"
            )
        os.replace(tmp, final)
        shards.append(
            {
                "name": name,
                "num_spheres": len(spheres),
                "num_bytes": int(final.stat().st_size),
                "sha256": digest_file(final),
            }
        )
        self._write_journal(shards)
        self._num_shards = len(shards)
        return name
