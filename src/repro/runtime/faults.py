"""Deterministic fault injection: every recovery path runs in tests.

Fault tolerance that is never exercised is a comment, not a property.  This
module lets tests (and the CI gate) name *exact* failure points — "crash the
worker processing the chunk starting at world 8, on its first two attempts",
"tear the second checkpoint shard write" — and have production code fail
there, deterministically, with zero randomness and zero overhead when no
plan is armed.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries.  Each names a
*site* (a string like ``"build.chunk"`` that production code passes at its
injection point), an optional *key* narrowing the site to one unit of work,
the *attempts* on which to fire, and a *kind*:

``crash``
    ``os._exit`` the current process — from a pool worker this produces the
    ``BrokenProcessPool`` the supervisor must recover from.
``error``
    raise :class:`~repro.runtime.errors.InjectedFault` — a transient
    worker-side exception, retryable at chunk granularity.
``sleep``
    block for ``seconds`` — simulates a hung chunk for timeout handling.
``torn``
    only meaningful at write sites: the writer persists a truncated
    payload and then raises, simulating a crash mid-write.

Plans travel through the ``REPRO_FAULTS`` environment variable, so pool
workers spawned after :func:`fault_scope` arms a plan inherit it
automatically.  Sites that cannot pass an explicit attempt number use a
per-process occurrence counter instead; counters reset whenever the armed
plan changes, so consecutive scopes do not bleed into each other.

Injection points are deterministic by construction: a site fires iff the
plan names it, the key matches, and the attempt matches — no clocks, no
RNGs.  The same plan against the same workload fails at the same points
every run.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence, Union

from repro.runtime.errors import InjectedFault

#: Environment variable carrying the armed plan's JSON across processes.
ENV_VAR = "REPRO_FAULTS"

#: Exit status of an injected ``crash`` — recognisable in worker logs.
CRASH_EXIT_CODE = 87

VALID_KINDS = ("crash", "error", "sleep", "torn")

#: Every injection point production code currently exposes, with the unit
#: of work its ``key`` narrows to.  Chaos scripts should target these names
#: (an unknown site in a plan silently never fires).  Note that ``crash``
#: at the ``serve.*`` sites kills the *server* process, not a worker — the
#: request-level failure modes there are ``error`` and ``sleep``.
KNOWN_SITES: dict[str, str] = {
    "build.chunk": "one world-range chunk of a parallel index build "
    "(key: first world of the chunk, attempt: retry number)",
    "append.stage": "staging one column file during append_worlds "
    "(key: array name)",
    "checkpoint.shard": "writing one sphere-checkpoint shard "
    "(key: shard file name; 'torn' persists half the payload)",
    "serve.compute": "one on-demand sphere computation in the query "
    "service (key: node id; 'sleep' past the deadline exercises the "
    "watchdog, 'error' feeds the circuit breaker)",
    "serve.store_read": "the store/cache lookup of one sphere request "
    "(key: node id)",
    "serve.reload": "a hot store reload, after candidate verification "
    "and before the generation swap ('error' forces a rollback)",
    "router.pick": "the partition-map lookup routing one request "
    "(key: node id; 'error' surfaces as an explicit router 500)",
    "router.forward": "one router->worker HTTP round-trip, fired before "
    "any bytes are sent (key: shard id; 'error' counts as a transport "
    "failure and feeds that shard's circuit breaker)",
    "router.reload": "one shard's step of a rolling fleet reload, before "
    "its worker is asked to swap (key: shard id; 'error' stops the roll "
    "with a 'partial' report and the remaining shards untouched)",
    "router.replica_pick": "the replica-ordering step routing one request "
    "to a shard's replica set (key: shard id; 'error' surfaces as an "
    "explicit router 500 before any replica is contacted)",
    "router.hedge": "launching the hedged second read after the primary "
    "replica missed the hedge deadline (key: shard id; 'error' abandons "
    "the hedge and lets the primary attempt run to completion)",
    "repair.copy": "staging one column file while rebuilding a replica "
    "from a healthy peer (key: array name; 'error' aborts the repair "
    "with the staging directory discarded and the target untouched)",
    "repair.commit": "committing a verified replica rebuild, after every "
    "staged column hashed clean and before the atomic rename (key: "
    "'<shard>/<replica>'; 'crash' leaves the old directory in place)",
    "jobs.submit": "admission and journalling of one job submission "
    "(key: job id; 'error' refuses the submission as a clean 500)",
    "jobs.step": "one greedy-iteration step of a running seed-selection "
    "job (key: job id, attempt: worker attempt number; 'crash' kills the "
    "job worker mid-selection, 'error' is a retryable step failure)",
    "jobs.commit": "appending one record to a job journal (key: record "
    "type, attempt: worker attempt number — passed explicitly so a plan "
    "does not re-fire in every respawned worker; 'torn' persists half "
    "the line, the crash artefact recovery must repair)",
    "jobs.result": "finalising a job's result record after the last "
    "selection step (key: job id, attempt: worker attempt number)",
    "data.fetch": "committing one fetched/materialised source file into "
    "the download cache, before the verify-then-rename (key: source "
    "name; 'torn' persists half the payload into the .part file, which "
    "the next fetch detects by digest and rewrites)",
    "data.parse": "one spill chunk or sort/dedup pass of a streaming "
    "ingest (key: chunk ordinal or pass name; 'crash' interrupts the "
    "parse stage, which the journalled ingest restarts cleanly)",
    "data.commit": "writing the self-checksummed dataset.json at the "
    "end of an ingest, before the staging directory is renamed into "
    "place (key: dataset name; 'torn' persists half the manifest, "
    "which loading refuses and a re-run ingest replaces)",
}

KeyLike = Union[int, str, None]


@dataclass(frozen=True)
class FaultSpec:
    """One named failure: where (site, key), when (attempts), what (kind)."""

    site: str
    kind: str
    key: KeyLike = None
    attempts: tuple[int, ...] = (0,)
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if self.kind not in VALID_KINDS:
            raise ValueError(
                f"fault kind must be one of {VALID_KINDS}, got {self.kind!r}"
            )
        if not self.attempts:
            raise ValueError("fault attempts must name at least one attempt")
        if any(a < 0 for a in self.attempts):
            raise ValueError(f"fault attempts must be non-negative: {self.attempts}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be non-negative, got {self.seconds}")

    def matches(self, site: str, key: KeyLike, attempt: int) -> bool:
        if site != self.site or attempt not in self.attempts:
            return False
        return self.key is None or self.key == key

    def to_mapping(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "key": self.key,
            "attempts": list(self.attempts),
            "seconds": self.seconds,
        }

    @classmethod
    def from_mapping(cls, raw: dict) -> "FaultSpec":
        key = raw.get("key")
        if key is not None and not isinstance(key, (int, str)):
            raise ValueError(f"fault key must be int, str or null, got {key!r}")
        return cls(
            site=str(raw["site"]),
            kind=str(raw["kind"]),
            key=key,
            attempts=tuple(int(a) for a in raw.get("attempts", (0,))),
            seconds=float(raw.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of failure points, serialisable for worker export."""

    faults: tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *faults: FaultSpec) -> "FaultPlan":
        return cls(faults=tuple(faults))

    def match(self, site: str, key: KeyLike, attempt: int) -> FaultSpec | None:
        """First spec firing at this (site, key, attempt), or ``None``."""
        for spec in self.faults:
            if spec.matches(site, key, attempt):
                return spec
        return None

    def to_json(self) -> str:
        return json.dumps(
            {"faults": [spec.to_mapping() for spec in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
            raw_faults = payload["faults"]
            if not isinstance(raw_faults, list):
                raise ValueError("'faults' must be a list")
            return cls(
                faults=tuple(FaultSpec.from_mapping(raw) for raw in raw_faults)
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed fault plan: {exc}") from exc


class FaultInjector:
    """Per-process injection engine.

    Parses the armed plan lazily from the environment (re-parsing only when
    the raw value changes, which also resets the occurrence counters) and
    interprets matched specs at each injection point.
    """

    def __init__(self) -> None:
        self._raw: str | None = None
        self._plan: FaultPlan | None = None
        self._counts: dict[tuple[str, KeyLike], int] = {}

    def plan(self) -> FaultPlan | None:
        raw = os.environ.get(ENV_VAR)
        if raw != self._raw:
            self._raw = raw
            self._plan = FaultPlan.from_json(raw) if raw else None
            self._counts = {}
        return self._plan

    def reset(self) -> None:
        """Forget cached plan and counters (a new scope starts clean)."""
        self._raw = None
        self._plan = None
        self._counts = {}

    def take(self, site: str, key: KeyLike = None, attempt: int | None = None) -> FaultSpec | None:
        """Consume one occurrence of ``site``/``key``; return the matched spec.

        When ``attempt`` is ``None`` the injector's per-process occurrence
        counter supplies it (sites like checkpoint writes, where the caller
        has no natural attempt number).  Returns ``None`` when no plan is
        armed or nothing matches — the fast path is one env lookup.
        """
        plan = self.plan()
        if plan is None:
            return None
        if attempt is None:
            counter_key = (site, key)
            attempt = self._counts.get(counter_key, 0)
            self._counts[counter_key] = attempt + 1
        return plan.match(site, key, attempt)

    def fire(self, site: str, key: KeyLike = None, attempt: int | None = None) -> None:
        """Standard injection point: crash, raise or hang per the plan."""
        spec = self.take(site, key, attempt=attempt)
        if spec is None:
            return
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "sleep":
            time.sleep(spec.seconds)
            return
        raise InjectedFault(
            f"injected {spec.kind} at site {site!r} (key={key!r}, attempt={attempt})"
        )

    def write_bytes(self, path: os.PathLike, payload: bytes, *, site: str, key: KeyLike = None) -> None:
        """Write ``payload`` to ``path`` — unless the plan tears this write.

        A matched ``torn`` spec persists only the first half of the payload
        and raises :class:`InjectedFault`, simulating a crash mid-write.
        Other kinds behave as in :meth:`fire`.
        """
        spec = self.take(site, key)
        if spec is not None and spec.kind == "torn":
            Path(path).write_bytes(payload[: len(payload) // 2])
            raise InjectedFault(
                f"injected torn write at site {site!r} (key={key!r})"
            )
        if spec is not None:
            if spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            if spec.kind == "sleep":
                time.sleep(spec.seconds)
            else:
                raise InjectedFault(
                    f"injected {spec.kind} at site {site!r} (key={key!r})"
                )
        Path(path).write_bytes(payload)


#: The process-wide injector every production injection point goes through.
_INJECTOR = FaultInjector()


def maybe_fire(site: str, key: KeyLike = None, attempt: int | None = None) -> None:
    """Module-level convenience over the process-wide injector."""
    _INJECTOR.fire(site, key, attempt=attempt)


def take_fault(site: str, key: KeyLike = None, attempt: int | None = None) -> FaultSpec | None:
    """Consume and return the matched spec for site-specific handling."""
    return _INJECTOR.take(site, key, attempt=attempt)


def faulty_write_bytes(path: os.PathLike, payload: bytes, *, site: str, key: KeyLike = None) -> None:
    """Write bytes through the injector (torn-write injection point)."""
    _INJECTOR.write_bytes(path, payload, site=site, key=key)


@contextmanager
def fault_scope(plan: FaultPlan | Sequence[FaultSpec] | None) -> Iterator[None]:
    """Arm ``plan`` for the duration of the block (and for child processes).

    Sets ``REPRO_FAULTS`` so process pools created inside the block inherit
    the plan, and restores the previous value (plus fresh injector
    counters) on exit.  ``None`` disarms injection inside the block.
    """
    if plan is not None and not isinstance(plan, FaultPlan):
        plan = FaultPlan(faults=tuple(plan))
    previous = os.environ.get(ENV_VAR)
    if plan is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = plan.to_json()
    _INJECTOR.reset()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        _INJECTOR.reset()
