"""Fault-tolerant runtime for long-running pipelines.

The paper's headline workloads — Algorithm 1's index build over thousands
of sampled worlds, Algorithm 2's all-nodes typical-cascade sweep — run for
hours at production scale.  This package makes them survive the failures
such runs actually meet, without ever changing their output:

* :mod:`repro.runtime.supervisor` — chunk-granular worker supervision for
  the parallel build: retry, backoff, pool replacement, serial fallback.
* :mod:`repro.runtime.checkpoint` — journaled, crash-safe checkpoints for
  the sphere sweep; a resumed run is digest-identical to an uninterrupted
  one.
* :mod:`repro.runtime.build_resume` — batched, resumable index-store
  builds committing through crash-safe appends.
* :mod:`repro.runtime.faults` — deterministic fault injection, so every
  recovery path above is exercised by tests instead of trusted.

All of it leans on one contract (see DESIGN.md): every unit of retried
work is a pure function of its payload — worlds of ``(seed entropy, i)``,
spheres of the index — so re-execution is always safe and bit-exact.

``checkpoint`` and ``build_resume`` are re-exported lazily: they import
the store/core layers, which themselves import :mod:`repro.runtime.faults`
for their injection points.
"""

from __future__ import annotations

from repro.runtime.errors import CheckpointError, InjectedFault, SupervisorError
from repro.runtime.faults import (
    CRASH_EXIT_CODE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_scope,
    faulty_write_bytes,
    maybe_fire,
    take_fault,
)
from repro.runtime.supervisor import (
    DEFAULT_CONFIG,
    SupervisorConfig,
    backoff_delay,
    supervise_chunks,
)

#: Lazily-resolved exports living below the store/core layers.
_LAZY_EXPORTS = {
    "SphereCheckpoint": "repro.runtime.checkpoint",
    "resumable_index_build": "repro.runtime.build_resume",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "CheckpointError",
    "InjectedFault",
    "SupervisorError",
    "CRASH_EXIT_CODE",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "fault_scope",
    "faulty_write_bytes",
    "maybe_fire",
    "take_fault",
    "DEFAULT_CONFIG",
    "SupervisorConfig",
    "backoff_delay",
    "supervise_chunks",
    "SphereCheckpoint",
    "resumable_index_build",
]
