"""Algorithm 2: typical cascades for nodes and seed sets.

``TypicalCascadeComputer`` wires the cascade index (Algorithm 1) to the
Jaccard-median approximation: for each queried source it extracts the ``l``
sampled cascades from the index, packs them into a
:class:`~repro.median.samples.SampleCollection`, and returns the median as a
:class:`~repro.core.sphere.SphereOfInfluence` together with its empirical
cost (the stability measure).
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Sequence, Union

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.graph.digraph import ProbabilisticDigraph
from repro.median.chierichetti import jaccard_median
from repro.median.local_search import local_search_refine
from repro.median.samples import SampleCollection
from repro.utils.rng import SeedLike
from repro.utils.validation import check_node, check_positive_int


class TypicalCascadeComputer:
    """Computes spheres of influence from a pre-built cascade index.

    Parameters:
        index: a :class:`~repro.cascades.index.CascadeIndex`, or the path
            of a saved one (store directory or ``.npz``) to load — the
            persistent-index workflow: build once, then serve every
            campaign's sphere queries from the same saved index.
        size_grid_ratio: density of the median's size sweep.
        refine: when True, polish every median with one local-search pass
            (slower; used by the ablation studies).

    Thread safety: :meth:`compute`, :meth:`compute_seed_set` and the index
    read path they use (``CascadeIndex.cascades`` / ``cascade`` /
    ``cascade_size``) keep all mutable state in locals, and a store-loaded
    index materialises its lazy per-world views under a lock — so one
    computer may serve concurrent queries from many threads (the online
    service does).  What is *not* safe concurrently with reads is mutating
    the index via ``CascadeIndex.extend``.
    """

    def __init__(
        self,
        index: Union[CascadeIndex, str, os.PathLike],
        size_grid_ratio: float = 1.15,
        refine: bool = False,
    ) -> None:
        if not isinstance(index, CascadeIndex):
            index = CascadeIndex.load(index)
        self._index = index
        self._size_grid_ratio = size_grid_ratio
        self._refine = refine

    @property
    def index(self) -> CascadeIndex:
        return self._index

    def _median_from_cascades(
        self, sources: tuple[int, ...], cascades: list[np.ndarray]
    ) -> SphereOfInfluence:
        samples = SampleCollection(self._index.num_nodes, cascades)
        result = jaccard_median(samples, size_grid_ratio=self._size_grid_ratio)
        if self._refine:
            refined = local_search_refine(samples, result.median, max_passes=2)
            if refined.cost < result.cost:
                result = refined
        sizes = samples.sizes
        return SphereOfInfluence(
            sources=sources,
            members=result.median,
            cost=result.cost,
            num_samples=samples.num_samples,
            strategy=result.strategy,
            sample_size_mean=float(sizes.mean()),
            sample_size_std=float(sizes.std()),
            sample_size_max=int(sizes.max()),
        )

    def compute(self, node: int) -> SphereOfInfluence:
        """Sphere of influence of a single node."""
        node = check_node(node, self._index.num_nodes)
        cascades = self._index.cascades(node)
        return self._median_from_cascades((node,), cascades)

    def compute_seed_set(self, seeds: Sequence[int]) -> SphereOfInfluence:
        """Typical cascade of a whole seed set (Section 5, item 1)."""
        seeds = [check_node(s, self._index.num_nodes, "seed") for s in seeds]
        if not seeds:
            raise ValueError("seed set must not be empty")
        cascades = self._index.seed_set_cascades(seeds)
        return self._median_from_cascades(tuple(seeds), cascades)

    def compute_all(
        self,
        nodes: Iterable[int] | None = None,
        on_progress: Callable[[int, SphereOfInfluence], None] | None = None,
    ) -> dict[int, SphereOfInfluence]:
        """Algorithm 2: spheres for every node (or the given subset).

        ``on_progress(node, sphere)`` is invoked after each node — the
        Figure 4 timing harness hooks in here.
        """
        if nodes is None:
            nodes = range(self._index.num_nodes)
        spheres: dict[int, SphereOfInfluence] = {}
        for node in nodes:
            sphere = self.compute(int(node))
            spheres[int(node)] = sphere
            if on_progress is not None:
                on_progress(int(node), sphere)
        return spheres

    def _provenance(self):
        from repro.store.provenance import IndexProvenance

        header = self._index.store_header
        return (
            IndexProvenance.from_header(header)
            if header is not None
            else IndexProvenance.from_index(self._index)
        )

    def compute_store(
        self,
        nodes: Iterable[int] | None = None,
        *,
        checkpoint_dir: Union[str, os.PathLike, None] = None,
        checkpoint_every: int = 64,
    ):
        """:meth:`compute_all` packaged as a provenance-carrying
        :class:`~repro.core.store.SphereStore`.

        The store records which index produced it (content digest, graph
        fingerprint, seed entropy, world count) — for an index opened from
        a persistent store the identity comes straight from its header;
        otherwise the live index is hashed.

        With ``checkpoint_dir`` set, the sweep is crash-safe: every
        ``checkpoint_every`` spheres are journaled durably
        (:class:`~repro.runtime.checkpoint.SphereCheckpoint`), and a rerun
        against the same directory recomputes only what is missing.  Each
        node's sphere is a pure function of the index, so a
        killed-then-resumed sweep returns a store whose :meth:`~repro.core.
        store.SphereStore.digest` equals an uninterrupted run's.  The
        checkpoint must belong to this index (provenance digests are
        compared) or :class:`~repro.runtime.errors.CheckpointError` is
        raised.
        """
        from repro.core.store import SphereStore

        provenance = self._provenance()
        if checkpoint_dir is None:
            return SphereStore(self.compute_all(nodes), provenance=provenance)

        from repro.runtime.checkpoint import SphereCheckpoint

        check_positive_int(checkpoint_every, "checkpoint_every")
        checkpoint = SphereCheckpoint(checkpoint_dir, provenance)
        recovered = checkpoint.load()
        if nodes is None:
            nodes = range(self._index.num_nodes)
        node_list = [int(node) for node in nodes]
        spheres: dict[int, SphereOfInfluence] = {}
        batch: dict[int, SphereOfInfluence] = {}
        for node in node_list:
            hit = recovered.get(node)
            if hit is not None:
                spheres[node] = hit
                continue
            batch[node] = self.compute(node)
            if len(batch) >= checkpoint_every:
                checkpoint.write_shard(batch)
                spheres.update(batch)
                batch = {}
        if batch:
            checkpoint.write_shard(batch)
            spheres.update(batch)
        return SphereStore(spheres, provenance=provenance)


def compute_typical_cascade(
    graph: ProbabilisticDigraph,
    source: int,
    num_samples: int = 256,
    seed: SeedLike = None,
    reduce_index: bool = True,
) -> SphereOfInfluence:
    """One-shot convenience: build an index for ``graph`` and return the
    sphere of influence of ``source``.

    For repeated queries build one :class:`CascadeIndex` and reuse a
    :class:`TypicalCascadeComputer` — index construction dominates.
    """
    check_positive_int(num_samples, "num_samples")
    index = CascadeIndex.build(graph, num_samples, seed=seed, reduce=reduce_index)
    return TypicalCascadeComputer(index).compute(source)
