"""Data-driven vaccination (the DAVA problem, Zhang & Prakash SDM 2014).

Section 7/8 of the paper point at the vaccination application: given nodes
that are *already infected*, pick ``k`` healthy nodes to vaccinate (remove
from the graph) so that the expected number of eventually-infected nodes is
minimised.

The implementation runs greedy marginal-benefit selection over the same
pre-sampled worlds the spheres of influence use: the benefit of vaccinating
``v`` is the expected number of nodes that are reachable from the infected
set *only through* ``v``.  Removing a vaccinated node from a world means
discarding it (and the paths through it) from the reachability search,
which we evaluate by BFS over the world's alive arcs skipping vaccinated
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sampling import WorldSampler
from repro.utils.rng import SeedLike
from repro.utils.validation import check_node, check_positive_int


@dataclass(frozen=True)
class VaccinationResult:
    """Outcome of a vaccination run.

    Attributes:
        vaccinated: chosen nodes, in selection order.
        expected_infections: expected infected count after each selection
            (starting point first, so the array has k + 1 entries).
        baseline_infections: expected infections with no vaccination.
    """

    vaccinated: list[int]
    expected_infections: np.ndarray
    baseline_infections: float

    @property
    def saved(self) -> float:
        """Expected number of nodes saved by the full vaccination set."""
        return float(self.baseline_infections - self.expected_infections[-1])


def _infected_mask(
    graph: ProbabilisticDigraph,
    infected: Sequence[int],
    edge_mask: np.ndarray,
    blocked: np.ndarray,
) -> np.ndarray:
    """Reachability from ``infected`` in one world, never entering blocked
    (vaccinated) nodes.  Infected nodes themselves cannot be vaccinated."""
    n = graph.num_nodes
    visited = np.zeros(n, dtype=bool)
    frontier = []
    for s in infected:
        if not visited[s]:
            visited[s] = True
            frontier.append(s)
    indptr, targets = graph.indptr, graph.targets
    while frontier:
        nxt = []
        for u in frontier:
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            alive = targets[lo:hi][edge_mask[lo:hi]]
            for v in alive:
                v = int(v)
                if not visited[v] and not blocked[v]:
                    visited[v] = True
                    nxt.append(v)
        frontier = nxt
    return visited


def greedy_vaccination(
    graph: ProbabilisticDigraph,
    infected: Sequence[int],
    k: int,
    num_worlds: int = 128,
    seed: SeedLike = None,
) -> VaccinationResult:
    """Greedy DAVA-style vaccination over sampled worlds.

    At each step, vaccinates the healthy node whose removal most reduces
    the expected infected count, estimated over the shared sampled worlds
    (common random numbers, so marginal comparisons are low-variance).
    """
    check_positive_int(k, "k")
    check_positive_int(num_worlds, "num_worlds")
    infected = sorted({check_node(s, graph.num_nodes, "infected") for s in infected})
    if not infected:
        raise ValueError("infected set must not be empty")
    n = graph.num_nodes
    if k > n - len(infected):
        raise ValueError(
            f"cannot vaccinate {k} of the {n - len(infected)} healthy nodes"
        )

    sampler = WorldSampler(graph, seed)
    masks = [sampler.world_mask(i) for i in range(num_worlds)]
    blocked = np.zeros(n, dtype=bool)

    def expected_infections() -> float:
        total = 0
        for mask in masks:
            total += int(_infected_mask(graph, infected, mask, blocked).sum())
        return total / num_worlds

    baseline = expected_infections()
    curve = [baseline]
    vaccinated: list[int] = []
    infected_set = set(infected)

    # Candidate pool: nodes that are ever infected in some world (others
    # can never help), minus the already-infected.
    ever = np.zeros(n, dtype=bool)
    for mask in masks:
        ever |= _infected_mask(graph, infected, mask, blocked)
    candidates = [
        v for v in np.flatnonzero(ever) if int(v) not in infected_set
    ]

    for _ in range(k):
        best_node = -1
        best_value = np.inf
        for v in candidates:
            v = int(v)
            if blocked[v]:
                continue
            blocked[v] = True
            value = expected_infections()
            blocked[v] = False
            if value < best_value:
                best_value = value
                best_node = v
        if best_node < 0:
            break
        blocked[best_node] = True
        vaccinated.append(best_node)
        curve.append(best_value)

    return VaccinationResult(
        vaccinated=vaccinated,
        expected_infections=np.asarray(curve, dtype=np.float64),
        baseline_infections=baseline,
    )


def degree_vaccination_baseline(
    graph: ProbabilisticDigraph,
    infected: Sequence[int],
    k: int,
    num_worlds: int = 128,
    seed: SeedLike = None,
) -> VaccinationResult:
    """Naive comparator: vaccinate the k highest out-degree healthy nodes."""
    check_positive_int(k, "k")
    infected = sorted({check_node(s, graph.num_nodes, "infected") for s in infected})
    if not infected:
        raise ValueError("infected set must not be empty")
    infected_set = set(infected)
    order = np.argsort(graph.out_degrees())[::-1]
    chosen = [int(v) for v in order if int(v) not in infected_set][:k]

    sampler = WorldSampler(graph, seed)
    masks = [sampler.world_mask(i) for i in range(num_worlds)]
    blocked = np.zeros(graph.num_nodes, dtype=bool)

    def expected_infections() -> float:
        total = 0
        for mask in masks:
            total += int(_infected_mask(graph, infected, mask, blocked).sum())
        return total / num_worlds

    baseline = expected_infections()
    curve = [baseline]
    for v in chosen:
        blocked[v] = True
        curve.append(expected_infections())
    return VaccinationResult(
        vaccinated=chosen,
        expected_infections=np.asarray(curve, dtype=np.float64),
        baseline_infections=baseline,
    )
