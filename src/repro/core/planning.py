"""Sample-size planning from the paper's Theorem 2.

Theorem 2: for any ``alpha > eps*`` (the optimal median cost), a sample of
size ``l = log(1/alpha) / alpha^2`` yields a ``(1 + O(alpha))``-approximate
median — *independent of the graph size*.  For the guarantee to hold
simultaneously for every node of an ``n``-node graph, the paper takes
``l = O(log(n / alpha) / alpha^2)`` (Section 4).

These helpers turn a target accuracy into a concrete sample count, and
invert the relationship for budget-constrained runs.  Constants are the
theorem's; the empirical samples-ablation benchmark shows real instances
plateau much earlier.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive_int


def samples_for_accuracy(alpha: float) -> int:
    """Theorem 2's single-query sample size ``ceil(log(1/alpha) / alpha^2)``."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    return max(1, math.ceil(math.log(1.0 / alpha) / alpha**2))


def samples_for_all_nodes(alpha: float, num_nodes: int) -> int:
    """The simultaneous-for-all-nodes size ``ceil(log(n/alpha) / alpha^2)``."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    check_positive_int(num_nodes, "num_nodes")
    return max(1, math.ceil(math.log(num_nodes / alpha) / alpha**2))


def accuracy_for_samples(num_samples: int, num_nodes: int | None = None) -> float:
    """Invert the planning formulas: the smallest ``alpha`` a sample budget
    supports (bisection on the monotone formulas)."""
    check_positive_int(num_samples, "num_samples")
    if num_nodes is not None:
        check_positive_int(num_nodes, "num_nodes")

    def required(alpha: float) -> int:
        if num_nodes is None:
            return samples_for_accuracy(alpha)
        return samples_for_all_nodes(alpha, num_nodes)

    lo, hi = 1e-4, 1.0 - 1e-9
    if required(hi) > num_samples:
        return 1.0
    for _ in range(80):
        mid = (lo + hi) / 2
        if required(mid) <= num_samples:
            hi = mid
        else:
            lo = mid
    return hi
