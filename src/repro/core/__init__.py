"""The paper's primary contribution: typical cascades (spheres of influence)
computed by sampling + Jaccard median, and the stability measure built on
their expected cost.
"""

from repro.core.sphere import SphereOfInfluence
from repro.core.typical_cascade import TypicalCascadeComputer, compute_typical_cascade
from repro.core.stability import seed_set_stability, sphere_stability
from repro.core.store import SphereStore
from repro.core.planning import (
    samples_for_accuracy,
    samples_for_all_nodes,
    accuracy_for_samples,
)
from repro.core.vaccination import (
    greedy_vaccination,
    degree_vaccination_baseline,
    VaccinationResult,
)

__all__ = [
    "SphereOfInfluence",
    "TypicalCascadeComputer",
    "compute_typical_cascade",
    "seed_set_stability",
    "sphere_stability",
    "SphereStore",
    "samples_for_accuracy",
    "samples_for_all_nodes",
    "accuracy_for_samples",
    "greedy_vaccination",
    "degree_vaccination_baseline",
    "VaccinationResult",
]
