"""Result object for a computed sphere of influence."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SphereOfInfluence:
    """The (approximate) typical cascade ``C*`` of a source.

    Attributes:
        sources: the query — a single node or a seed set (sorted tuple).
        members: sorted int64 array of nodes in the typical cascade.
        cost: empirical cost rho_bar(C*) over the samples it was fit on.
            This is the paper's *stability* measure: lower is more reliable.
        num_samples: how many sampled cascades the median was computed from.
        strategy: which median candidate family won (diagnostics).
        sample_size_mean / sample_size_std / sample_size_max: statistics of
            the sampled cascades |S_i| (the quantities Table 2 aggregates).
    """

    sources: tuple[int, ...]
    members: np.ndarray
    cost: float
    num_samples: int
    strategy: str = "size-sweep"
    sample_size_mean: float = float("nan")
    sample_size_std: float = float("nan")
    sample_size_max: int = 0

    def __post_init__(self) -> None:
        members = np.asarray(self.members, dtype=np.int64)
        object.__setattr__(self, "members", members)
        object.__setattr__(self, "sources", tuple(sorted(int(s) for s in self.sources)))

    @property
    def size(self) -> int:
        """|C*| — the size of the typical cascade."""
        return int(self.members.size)

    def as_set(self) -> frozenset[int]:
        """Members as a frozenset of node ids."""
        return frozenset(int(x) for x in self.members)

    def contains(self, node: int) -> bool:
        """True iff ``node`` belongs to the typical cascade."""
        i = int(np.searchsorted(self.members, node))
        return i < self.members.size and int(self.members[i]) == int(node)

    def __repr__(self) -> str:
        src = self.sources[0] if len(self.sources) == 1 else self.sources
        return (
            f"SphereOfInfluence(source={src!r}, size={self.size}, "
            f"cost={self.cost:.4f}, samples={self.num_samples})"
        )
