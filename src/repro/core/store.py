"""Persistent storage for computed spheres of influence.

Section 8 of the paper: "having the spheres of influence precomputed and
stored in an index might provide a direct solution to several variants of
influence maximization ... when the next campaign is run ... we can again
reuse the same spheres."  ``SphereStore`` is that persistence layer: a
compressed ``.npz`` holding every node's typical cascade, its cost and the
sampling metadata, loadable in milliseconds for the next campaign.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
import zlib
from typing import Iterator, Mapping, Union

import numpy as np

from repro.core.sphere import SphereOfInfluence
from repro.store.errors import StoreFormatError
from repro.store.provenance import IndexProvenance

PathLike = Union[str, os.PathLike]


class SphereStore:
    """An immutable collection of single-node spheres with npz persistence.

    ``provenance`` optionally records which cascade index the spheres were
    computed from (:class:`~repro.store.provenance.IndexProvenance`); it is
    persisted alongside the spheres, so a saved store stays auditable back
    to the sampled worlds that produced it.
    """

    def __init__(
        self,
        spheres: Mapping[int, SphereOfInfluence],
        *,
        provenance: IndexProvenance | None = None,
    ) -> None:
        if not spheres:
            raise ValueError("store needs at least one sphere")
        for node, sphere in spheres.items():
            if len(sphere.sources) != 1 or sphere.sources[0] != int(node):
                raise ValueError(
                    f"sphere under key {node} has sources {sphere.sources}; "
                    "the store holds single-node spheres keyed by source"
                )
        self._spheres = {int(node): sphere for node, sphere in spheres.items()}
        self._provenance = provenance

    @property
    def provenance(self) -> IndexProvenance | None:
        """Identity of the index these spheres came from, when recorded."""
        return self._provenance

    # -- mapping surface ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spheres)

    def __contains__(self, node: int) -> bool:
        return int(node) in self._spheres

    def __getitem__(self, node: int) -> SphereOfInfluence:
        sphere = self._spheres.get(int(node))
        if sphere is None:
            raise KeyError(
                f"node {int(node)} not in store ({len(self._spheres)} nodes)"
            )
        return sphere

    def get(
        self, node: int, default: SphereOfInfluence | None = None
    ) -> SphereOfInfluence | None:
        """The sphere of ``node``, or ``default`` when absent — the cheap
        miss path the serving layer probes before computing on demand."""
        return self._spheres.get(int(node), default)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._spheres))

    def items(self):
        """(node, sphere) pairs, dict-style."""
        return self._spheres.items()

    def nodes(self) -> list[int]:
        """Sorted node ids present in the store."""
        return sorted(self._spheres)

    # -- views ----------------------------------------------------------------

    def members_family(self) -> dict[int, np.ndarray]:
        """node -> members arrays, the input shape the cover variants take."""
        return {node: s.members for node, s in self._spheres.items()}

    def costs(self) -> np.ndarray:
        """Cost of each sphere, aligned with :meth:`nodes`."""
        return np.array([self._spheres[v].cost for v in self.nodes()])

    def sizes(self) -> np.ndarray:
        """Size of each sphere, aligned with :meth:`nodes`."""
        return np.array([self._spheres[v].size for v in self.nodes()])

    def most_reliable(self, count: int, min_size: int = 2) -> list[int]:
        """The ``count`` lowest-cost nodes among spheres of at least
        ``min_size`` members (singleton spheres are trivially stable)."""
        eligible = [v for v in self.nodes() if self._spheres[v].size >= min_size]
        eligible.sort(key=lambda v: (self._spheres[v].cost, v))
        return eligible[:count]

    def digest(self) -> str:
        """Canonical SHA-256 of the store's logical content.

        Computed over the sorted node ids, every sphere's members/cost/
        sampling metadata and the provenance record — independent of how the
        store was produced, so an interrupted-then-resumed sweep and an
        uninterrupted one can be compared with a single string equality
        (the resume-determinism tests and the CI fault-injection gate do).
        """
        nodes = self.nodes()
        members = [self._spheres[v].members for v in nodes]
        sizes = [m.size for m in members]
        hasher = hashlib.sha256()
        hasher.update(b"repro-sphere-store-v1")
        for name, array, dtype in (
            ("nodes", np.asarray(nodes), np.int64),
            ("sizes", np.asarray(sizes), np.int64),
            (
                "members",
                np.concatenate(members) if members else np.zeros(0, np.int64),
                np.int64,
            ),
            ("costs", self.costs(), np.float64),
            (
                "num_samples",
                np.asarray([self._spheres[v].num_samples for v in nodes]),
                np.int64,
            ),
            (
                "sample_size_mean",
                np.asarray([self._spheres[v].sample_size_mean for v in nodes]),
                np.float64,
            ),
            (
                "sample_size_std",
                np.asarray([self._spheres[v].sample_size_std for v in nodes]),
                np.float64,
            ),
            (
                "sample_size_max",
                np.asarray([self._spheres[v].sample_size_max for v in nodes]),
                np.int64,
            ),
        ):
            hasher.update(name.encode("ascii"))
            canonical = np.ascontiguousarray(
                array, dtype=np.dtype(dtype).newbyteorder("<")
            )
            hasher.update(canonical.tobytes())
        if self._provenance is not None:
            hasher.update(self._provenance.to_json().encode("utf-8"))
        return "sha256:" + hasher.hexdigest()

    # -- persistence ------------------------------------------------------------

    def save(self, path: PathLike) -> None:
        """Persist every sphere (and any provenance) into one ``.npz``."""
        nodes = self.nodes()
        members = [self._spheres[v].members for v in nodes]
        sizes = np.array([m.size for m in members], dtype=np.int64)
        indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        concat = (
            np.concatenate(members) if indptr[-1] > 0 else np.zeros(0, np.int64)
        )
        extra: dict[str, np.ndarray] = {}
        if self._provenance is not None:
            extra["provenance"] = np.array([self._provenance.to_json()])
        np.savez_compressed(
            path,
            nodes=np.asarray(nodes, dtype=np.int64),
            indptr=indptr,
            members=concat,
            costs=np.array([self._spheres[v].cost for v in nodes]),
            num_samples=np.array(
                [self._spheres[v].num_samples for v in nodes], dtype=np.int64
            ),
            sample_size_mean=np.array(
                [self._spheres[v].sample_size_mean for v in nodes]
            ),
            sample_size_std=np.array(
                [self._spheres[v].sample_size_std for v in nodes]
            ),
            sample_size_max=np.array(
                [self._spheres[v].sample_size_max for v in nodes], dtype=np.int64
            ),
            **extra,
        )

    @classmethod
    def load(cls, path: PathLike) -> "SphereStore":
        """Inverse of :meth:`save`.

        Raises :class:`~repro.store.errors.StoreFormatError` (a
        ``ValueError``) when the archive is truncated, corrupt or not a
        sphere store at all — one public exception type for every flavour
        of unreadable file (missing path excepted: that stays
        ``FileNotFoundError``).
        """
        try:
            with np.load(path) as data:
                try:
                    nodes = data["nodes"]
                    indptr = data["indptr"]
                    concat = data["members"]
                    spheres = {}
                    for i, node in enumerate(nodes):
                        node = int(node)
                        spheres[node] = SphereOfInfluence(
                            sources=(node,),
                            members=concat[indptr[i] : indptr[i + 1]].copy(),
                            cost=float(data["costs"][i]),
                            num_samples=int(data["num_samples"][i]),
                            sample_size_mean=float(data["sample_size_mean"][i]),
                            sample_size_std=float(data["sample_size_std"][i]),
                            sample_size_max=int(data["sample_size_max"][i]),
                        )
                    provenance = None
                    if "provenance" in data.files:
                        provenance = IndexProvenance.from_json(
                            str(data["provenance"][0])
                        )
                except KeyError as exc:
                    raise StoreFormatError(
                        f"{os.fspath(path)} is not a complete sphere store: "
                        f"missing array — {exc.args[0]}"
                    ) from exc
        except FileNotFoundError:
            raise
        except StoreFormatError:
            raise
        except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
            raise StoreFormatError(
                f"{os.fspath(path)} is not a readable sphere store: {exc}"
            ) from exc
        return cls(spheres, provenance=provenance)
