"""``reprolint`` — AST-based determinism & correctness analysis for this repo.

The paper's guarantees (the ``1 + O(alpha)`` Jaccard-median approximation of
Theorem 2, the cascade-index equivalence of Algorithms 1/2) are reproducible
only if every stochastic component draws from a deterministic, injectable
RNG and every probability stays inside its domain.  ``repro.utils.rng``
documents that contract; this package machine-checks it.

Architecture:

* :mod:`repro.analysis.diagnostics` — the :class:`Diagnostic` record and
  severity levels.
* :mod:`repro.analysis.context` — per-module parse context (AST, parent
  links, import-alias resolution) shared by all checkers.
* :mod:`repro.analysis.registry` — the pluggable checker registry; checkers
  self-register via the :func:`~repro.analysis.registry.register` decorator.
* :mod:`repro.analysis.suppress` — inline ``# reprolint: disable=<id>``
  comment handling.
* :mod:`repro.analysis.runner` — file discovery + orchestration.
* :mod:`repro.analysis.checkers` — the built-in checker catalogue (REP1xx
  through REP6xx).
* :mod:`repro.analysis.project` — the whole-program lock model + call
  graph consumed by the project-wide (REP7xx) concurrency checkers in
  :mod:`repro.analysis.checkers.concurrency`.
* :mod:`repro.analysis.explain` — the generated checker catalogue
  (``--explain`` / ``docs/reprolint.md``).
* :mod:`repro.analysis.cli` — ``python -m repro.analysis <paths>``.

Run the analyzer over the library::

    python -m repro.analysis src/repro

Exit status is non-zero iff unsuppressed diagnostics were emitted, so the
command doubles as a CI gate (see ``tests/analysis/test_gate.py``).
"""

from __future__ import annotations

from repro.analysis.checkers.base import Checker
from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.project import ProjectChecker, ProjectContext
from repro.analysis.registry import (
    CheckerRegistry,
    default_registry,
    project_registry,
    register,
    register_project,
)
from repro.analysis.runner import (
    analyze_file,
    analyze_paths,
    analyze_project,
    analyze_source,
)

__all__ = [
    "Checker",
    "CheckerRegistry",
    "Diagnostic",
    "ModuleContext",
    "ProjectChecker",
    "ProjectContext",
    "Severity",
    "analyze_file",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "default_registry",
    "project_registry",
    "register",
    "register_project",
]
