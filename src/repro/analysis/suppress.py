"""Inline suppression comments.

A violation is silenced by a comment on the *reported* physical line::

    thresholds[thresholds == 0.0] = 1.0  # reprolint: disable=REP301

Several ids may be listed (``disable=REP301,REP601``), and a bare
``# reprolint: disable`` suppresses every checker on that line.  A
module-wide opt-out uses ``disable-file`` anywhere in the module::

    # reprolint: disable-file=REP601

Suppressions are extracted with :mod:`tokenize` rather than a regex over
raw lines so that ``reprolint:`` markers inside string literals are never
mistaken for directives.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*(?:=\s*(?P<ids>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel id meaning "every checker".
ALL = "all"


@dataclass
class SuppressionTable:
    """Suppressed checker ids per physical line, plus file-wide ids."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()
    #: Every directive as written — ``(line, ids)`` including file-wide
    #: ones — so the runner can warn about unknown ids (REP002).
    directives: list[tuple[int, frozenset[str]]] = field(default_factory=list)

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """True iff ``diagnostic`` is silenced by a directive."""
        for ids in (self.file_wide, self.by_line.get(diagnostic.line, frozenset())):
            if ALL in ids or diagnostic.checker_id in ids:
                return True
        return False

    def filter(self, diagnostics: list[Diagnostic]) -> list[Diagnostic]:
        """Drop every suppressed diagnostic."""
        return [d for d in diagnostics if not self.is_suppressed(d)]


def _parse_ids(raw: str | None) -> frozenset[str]:
    if raw is None:
        return frozenset({ALL})
    ids = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return ids or frozenset({ALL})


def scan_suppressions(source: str) -> SuppressionTable:
    """Extract every suppression directive from ``source``.

    Tolerates syntactically broken files (tokenize errors) by returning an
    empty table — the runner reports the syntax error separately.
    """
    table = SuppressionTable()
    file_wide: set[str] = set()
    by_line: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            ids = _parse_ids(match.group("ids"))
            table.directives.append((tok.start[0], ids))
            if match.group("kind") == "disable-file":
                file_wide.update(ids)
            else:
                line = tok.start[0]
                by_line.setdefault(line, set()).update(ids)
    except tokenize.TokenError:
        pass
    table.file_wide = frozenset(file_wide)
    table.by_line = {line: frozenset(ids) for line, ids in by_line.items()}
    return table
