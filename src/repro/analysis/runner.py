"""File discovery and checker orchestration.

:func:`analyze_source` runs a registry over one in-memory module (the unit
the fixture tests exercise); :func:`analyze_file` adds disk IO and
syntax-error reporting; :func:`analyze_paths` walks directories.  All three
apply the inline-suppression table before returning, unless asked not to.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import CheckerRegistry, default_registry
from repro.analysis.suppress import scan_suppressions

#: Directory names never descended into.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", "build", "dist", ".venv", "venv"}
)


def analyze_source(
    source: str,
    path: str = "<string>",
    registry: CheckerRegistry | None = None,
    respect_suppressions: bool = True,
) -> list[Diagnostic]:
    """Run every applicable checker over one module's source text."""
    registry = registry if registry is not None else default_registry()
    try:
        ctx = ModuleContext.from_source(path, source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                checker_id="REP001",
                message=f"syntax error: {exc.msg}",
                severity=Severity.ERROR,
            )
        ]
    diagnostics: list[Diagnostic] = []
    for checker in registry:
        if not checker.applies_to(ctx):
            continue
        diagnostics.extend(checker.check(ctx))
    if respect_suppressions:
        diagnostics = scan_suppressions(source).filter(diagnostics)
    return sorted(diagnostics)


def analyze_file(
    path: str | Path,
    registry: CheckerRegistry | None = None,
    respect_suppressions: bool = True,
) -> list[Diagnostic]:
    """Analyze one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return analyze_source(
        source,
        path=str(path),
        registry=registry,
        respect_suppressions=respect_suppressions,
    )


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def analyze_paths(
    paths: Sequence[str | Path],
    registry: CheckerRegistry | None = None,
    respect_suppressions: bool = True,
) -> list[Diagnostic]:
    """Analyze every ``.py`` file under ``paths`` (files or directories)."""
    registry = registry if registry is not None else default_registry()
    diagnostics: list[Diagnostic] = []
    for path in discover_files(paths):
        diagnostics.extend(
            analyze_file(
                path, registry=registry, respect_suppressions=respect_suppressions
            )
        )
    return sorted(diagnostics)


def parse_ok(source: str) -> bool:
    """Cheap syntax probe used by the fixture tests."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
