"""File discovery and checker orchestration.

:func:`analyze_source` runs a registry over one in-memory module (the unit
the fixture tests exercise); :func:`analyze_file` adds disk IO and
syntax-error reporting; :func:`analyze_paths` walks directories.  All three
apply the inline-suppression table before returning, unless asked not to.

:func:`analyze_project` is the whole-program entry point: it parses every
discovered module into one :class:`~repro.analysis.project.ProjectContext`
and runs the project-wide (REP7xx) checkers over the cross-linked result.

Two diagnostics are owned by the runner itself rather than a checker:

* ``REP001`` — the file does not parse;
* ``REP002`` — a suppression directive names an unknown checker id.  A
  typo'd ``# reprolint: disable=REP70l`` must warn, not silently leave the
  real violation suppress-less *and* the author convinced it is handled.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from repro.analysis.checkers.base import Checker
from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import (
    CheckerRegistry,
    default_registry,
    known_checker_ids,
    project_registry,
)
from repro.analysis.suppress import SuppressionTable, scan_suppressions

#: Directory names never descended into.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".hypothesis", "build", "dist", ".venv", "venv"}
)

_EMPTY_TABLE = SuppressionTable()


def _syntax_error_diagnostic(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
        checker_id="REP001",
        message=f"syntax error: {exc.msg}",
        severity=Severity.ERROR,
    )


def _unknown_suppression_warnings(
    path: str, table: SuppressionTable
) -> list[Diagnostic]:
    """REP002 warnings for directives naming ids no checker owns."""
    known = known_checker_ids()
    warnings: list[Diagnostic] = []
    for line, ids in table.directives:
        for checker_id in sorted(ids - known):
            warnings.append(
                Diagnostic(
                    path=path,
                    line=line,
                    col=1,
                    checker_id="REP002",
                    message=(
                        f"suppression directive names unknown checker id "
                        f"{checker_id!r}; it silences nothing"
                    ),
                    severity=Severity.WARNING,
                )
            )
    return warnings


def analyze_source(
    source: str,
    path: str = "<string>",
    registry: CheckerRegistry | None = None,
    respect_suppressions: bool = True,
) -> list[Diagnostic]:
    """Run every applicable checker over one module's source text."""
    registry = registry if registry is not None else default_registry()
    try:
        ctx = ModuleContext.from_source(path, source)
    except SyntaxError as exc:
        return [_syntax_error_diagnostic(path, exc)]
    diagnostics: list[Diagnostic] = []
    for checker in registry:
        if not isinstance(checker, Checker):
            continue  # project-wide checkers need a ProjectContext
        if not checker.applies_to(ctx):
            continue
        diagnostics.extend(checker.check(ctx))
    table = scan_suppressions(source)
    diagnostics.extend(_unknown_suppression_warnings(path, table))
    if respect_suppressions:
        diagnostics = table.filter(diagnostics)
    return sorted(diagnostics)


def analyze_file(
    path: str | Path,
    registry: CheckerRegistry | None = None,
    respect_suppressions: bool = True,
) -> list[Diagnostic]:
    """Analyze one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return analyze_source(
        source,
        path=str(path),
        registry=registry,
        respect_suppressions=respect_suppressions,
    )


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def analyze_paths(
    paths: Sequence[str | Path],
    registry: CheckerRegistry | None = None,
    respect_suppressions: bool = True,
) -> list[Diagnostic]:
    """Analyze every ``.py`` file under ``paths`` (files or directories)."""
    registry = registry if registry is not None else default_registry()
    diagnostics: list[Diagnostic] = []
    for path in discover_files(paths):
        diagnostics.extend(
            analyze_file(
                path, registry=registry, respect_suppressions=respect_suppressions
            )
        )
    return sorted(diagnostics)


def analyze_project(
    paths: Sequence[str | Path],
    registry: CheckerRegistry | None = None,
    respect_suppressions: bool = True,
) -> list[Diagnostic]:
    """Run the project-wide (REP7xx) pass over every module at once.

    Files that fail to parse are reported via ``REP001`` and excluded from
    the project model; everything else is cross-linked into one
    :class:`~repro.analysis.project.ProjectContext` before the checkers
    run, so lock regions, guarded attributes and the call graph span module
    boundaries.
    """
    from repro.analysis.project import ProjectChecker, ProjectContext

    registry = registry if registry is not None else project_registry()
    diagnostics: list[Diagnostic] = []
    modules: list[ModuleContext] = []
    tables: dict[str, SuppressionTable] = {}
    for path in discover_files(paths):
        source = Path(path).read_text(encoding="utf-8")
        tables[str(path)] = scan_suppressions(source)
        try:
            modules.append(ModuleContext.from_source(str(path), source))
        except SyntaxError as exc:
            diagnostics.append(_syntax_error_diagnostic(str(path), exc))
    project = ProjectContext(modules)
    for checker in registry:
        if isinstance(checker, ProjectChecker):
            diagnostics.extend(checker.check(project))
    for path_str, table in tables.items():
        diagnostics.extend(_unknown_suppression_warnings(path_str, table))
    if respect_suppressions:
        diagnostics = [
            d
            for d in diagnostics
            if not tables.get(d.path, _EMPTY_TABLE).is_suppressed(d)
        ]
    return sorted(diagnostics)


def parse_ok(source: str) -> bool:
    """Cheap syntax probe used by the fixture tests."""
    try:
        ast.parse(source)
    except SyntaxError:
        return False
    return True
