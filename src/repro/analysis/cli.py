"""``reprolint`` command line: ``python -m repro.analysis <paths>``.

Exit codes: 0 — clean; 1 — diagnostics found; 2 — usage error.  The text
format is one ``path:line:col: ID severity: message`` per finding (stable
order), followed by a one-line tally; ``--format json`` (or the ``--json``
shorthand) emits a machine readable list for tooling — the CI gates
consume it so violations surface as structured records.

``--project`` switches from the per-module pass (REP1xx–REP6xx) to the
whole-program concurrency pass (REP7xx); ``--explain`` prints the full
generated checker catalogue (the source of ``docs/reprolint.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.diagnostics import Severity
from repro.analysis.registry import default_registry, project_registry
from repro.analysis.runner import analyze_paths, analyze_project


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST-based determinism & correctness analysis "
            "for the repro library"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "run the whole-program concurrency pass (REP7xx) instead of "
            "the per-module checkers"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated checker ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_const",
        dest="format",
        const="json",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore inline '# reprolint: disable' comments",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print the checker catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help=(
            "print the full generated markdown catalogue "
            "(the source of docs/reprolint.md) and exit"
        ),
    )
    return parser


def _split_ids(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.explain:
        from repro.analysis.explain import render_catalogue

        print(render_catalogue(), end="")
        return 0

    if options.list_checkers:
        catalogue = [
            checker
            for registry in (default_registry(), project_registry())
            for checker in registry
        ]
        for checker in sorted(catalogue, key=lambda c: c.id):
            print(f"{checker.id}  {checker.name:24s} {checker.description}")
        return 0

    registry = project_registry() if options.project else default_registry()
    try:
        registry = registry.select(
            _split_ids(options.select), _split_ids(options.ignore)
        )
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    analyze = analyze_project if options.project else analyze_paths
    try:
        diagnostics = analyze(
            options.paths,
            registry=registry,
            respect_suppressions=not options.no_suppress,
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))

    if options.format == "json":
        print(json.dumps([d.as_dict() for d in diagnostics], indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
        warnings = len(diagnostics) - errors
        if diagnostics:
            print(
                f"reprolint: {len(diagnostics)} finding(s) "
                f"({errors} error, {warnings} warning)"
            )
        else:
            print("reprolint: clean")
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
