"""Diagnostic records emitted by checkers.

A :class:`Diagnostic` pins a finding to a file, line and column and carries
the checker id so suppression comments and ``--select``/``--ignore`` filters
can address it.  Ordering is by location, which gives the CLI a stable,
diff-friendly report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` findings break the determinism/correctness contract outright
    (direct RNG construction, probability out of domain); ``WARNING``
    findings are smells that need either a fix or a justified suppression
    (quadratic growth patterns on hot paths).  Both gate CI — the split
    exists for reporting, not for leniency.
    """

    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where, what, which checker, how severe."""

    path: str
    line: int
    col: int
    checker_id: str = field(compare=False)
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def format(self) -> str:
        """Render as ``path:line:col: ID severity: message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.checker_id} {self.severity.label()}: {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker_id": self.checker_id,
            "severity": self.severity.label(),
            "message": self.message,
        }
