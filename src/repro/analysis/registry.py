"""Pluggable checker registry.

Checkers self-register at import time via the :func:`register` decorator::

    @register
    class MyChecker(Checker):
        id = "REP901"
        ...

:func:`default_registry` imports the built-in catalogue
(:mod:`repro.analysis.checkers`) and returns a registry holding one
instance of each.  Callers may also build ad-hoc registries (the fixture
tests do) to run a single checker in isolation.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterable, Iterator, Type

from repro.analysis.checkers.base import Checker

if TYPE_CHECKING:
    from repro.analysis.project import ProjectChecker

_ID_PATTERN = re.compile(r"^[A-Z]{2,8}\d{3}$")

#: Classes registered via the decorator, in registration order.
_REGISTERED: list[Type[Checker]] = []

#: Project-wide (REP7xx) checker classes, registered separately because
#: they consume a :class:`~repro.analysis.project.ProjectContext` instead
#: of one module at a time.
_PROJECT_REGISTERED: list[type] = []

#: Infrastructure ids the runner emits itself (not checker classes).
RUNNER_IDS = frozenset({"REP001", "REP002"})


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding ``cls`` to the built-in checker catalogue."""
    validate_checker_class(cls)
    if any(existing.id == cls.id for existing in _REGISTERED):
        raise ValueError(f"duplicate checker id {cls.id!r}")
    _REGISTERED.append(cls)
    return cls


def register_project(cls: "Type[ProjectChecker]") -> "Type[ProjectChecker]":
    """Class decorator adding ``cls`` to the project-wide catalogue."""
    validate_checker_class(cls)
    if any(existing.id == cls.id for existing in _PROJECT_REGISTERED):
        raise ValueError(f"duplicate checker id {cls.id!r}")
    _PROJECT_REGISTERED.append(cls)
    return cls


def validate_checker_class(cls: type) -> None:
    """Reject malformed checker classes with a precise error."""
    for attr in ("id", "name", "description"):
        value = getattr(cls, attr, None)
        if not isinstance(value, str) or not value:
            raise TypeError(f"checker {cls.__name__} must define a non-empty {attr!r}")
    checker_id: str = cls.id
    if not _ID_PATTERN.match(checker_id):
        raise ValueError(
            f"checker id {checker_id!r} must look like 'REP101' "
            "(2-8 capitals + 3 digits)"
        )


class CheckerRegistry:
    """Ordered, id-addressable collection of checker instances.

    Holds per-module :class:`~repro.analysis.checkers.base.Checker`
    instances or project-wide
    :class:`~repro.analysis.project.ProjectChecker` instances — both share
    the id/name/description/severity contract; the runner dispatches on
    which ``check`` signature the instance implements.
    """

    def __init__(self, checkers: "Iterable[Checker | ProjectChecker]" = ()) -> None:
        self._by_id: "dict[str, Checker | ProjectChecker]" = {}
        for checker in checkers:
            self.add(checker)

    def add(self, checker: "Checker | ProjectChecker") -> None:
        validate_checker_class(type(checker))
        if checker.id in self._by_id:
            raise ValueError(f"duplicate checker id {checker.id!r}")
        self._by_id[checker.id] = checker

    def __iter__(self) -> "Iterator[Checker | ProjectChecker]":
        return iter(self._by_id.values())

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, checker_id: str) -> bool:
        return checker_id in self._by_id

    def get(self, checker_id: str) -> "Checker | ProjectChecker":
        try:
            return self._by_id[checker_id]
        except KeyError:
            raise KeyError(
                f"unknown checker id {checker_id!r}; "
                f"known: {', '.join(sorted(self._by_id))}"
            ) from None

    def ids(self) -> list[str]:
        return sorted(self._by_id)

    def select(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> "CheckerRegistry":
        """Sub-registry restricted to ``select`` minus ``ignore``.

        Unknown ids raise ``KeyError`` so typos in CI configuration fail
        loudly instead of silently disabling a gate.
        """
        wanted = list(select) if select is not None else self.ids()
        dropped = frozenset(ignore or ())
        for checker_id in [*wanted, *dropped]:
            self.get(checker_id)
        return CheckerRegistry(
            self._by_id[cid] for cid in self._by_id if cid in wanted and cid not in dropped
        )


def default_registry() -> CheckerRegistry:
    """Registry holding one instance of every built-in per-module checker."""
    # Importing the package triggers the @register decorators.
    import repro.analysis.checkers  # noqa: F401

    return CheckerRegistry(cls() for cls in _REGISTERED)


def project_registry() -> CheckerRegistry:
    """Registry holding one instance of every project-wide (REP7xx) checker."""
    # Importing the module triggers the @register_project decorators.
    import repro.analysis.checkers.concurrency  # noqa: F401

    return CheckerRegistry(cls() for cls in _PROJECT_REGISTERED)


def known_checker_ids() -> frozenset[str]:
    """Every id a suppression directive may legitimately name.

    The union of per-module checkers, project checkers, the runner's own
    infrastructure ids (REP001 syntax error, REP002 unknown suppression)
    and the ``all`` sentinel.  Suppressions naming anything else trigger a
    REP002 warning — a typo in a disable comment must not silently widen
    what it silences.
    """
    from repro.analysis.suppress import ALL

    ids: set[str] = {ALL}
    ids.update(checker.id for checker in default_registry())
    ids.update(checker.id for checker in project_registry())
    ids.update(RUNNER_IDS)
    return frozenset(ids)
