"""Per-module analysis context shared by every checker.

One :class:`ModuleContext` is built per analyzed file.  It owns the parsed
AST and lazily computes the facts most checkers need:

* a child -> parent node map (``ast`` has no parent links);
* the import-alias table, so ``np.random.default_rng`` resolves to the
  canonical dotted name ``numpy.random.default_rng`` whatever the module
  called ``numpy``;
* the chain of enclosing function definitions for any node.

Checkers stay stateless; everything position- or module-dependent lives
here, which is what makes the registry pluggable.
"""

from __future__ import annotations

import ast
from functools import cached_property
from pathlib import PurePosixPath

from repro.analysis.diagnostics import Diagnostic, Severity

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


class ModuleContext:
    """Parsed module plus the derived lookup tables checkers rely on."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleContext":
        return cls(path, source, ast.parse(source, filename=path))

    # -- path-derived facts --------------------------------------------------

    @cached_property
    def posix_path(self) -> PurePosixPath:
        return PurePosixPath(str(self.path).replace("\\", "/"))

    @cached_property
    def package_parts(self) -> tuple[str, ...]:
        """Path components — used for package-scoped checker rules."""
        return self.posix_path.parts

    def in_package(self, *names: str) -> bool:
        """True iff any of ``names`` appears as a directory component."""
        return any(name in self.package_parts[:-1] for name in names)

    @property
    def is_test_module(self) -> bool:
        return (
            self.in_package("tests")
            or self.posix_path.name.startswith("test_")
            or self.posix_path.name == "conftest.py"
        )

    def path_endswith(self, suffix: str) -> bool:
        """Match a file by trailing path, e.g. ``repro/utils/rng.py``."""
        tail = PurePosixPath(suffix).parts
        return self.package_parts[-len(tail) :] == tail

    # -- structural lookups --------------------------------------------------

    @cached_property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the whole tree."""
        table: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                table[child] = parent
        return table

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Parent chain from ``node`` (exclusive) up to the module root."""
        chain: list[ast.AST] = []
        current = self.parents.get(node)
        while current is not None:
            chain.append(current)
            current = self.parents.get(current)
        return chain

    def enclosing_functions(self, node: ast.AST) -> list[FunctionNode]:
        """Innermost-first function definitions lexically containing ``node``."""
        return [a for a in self.ancestors(node) if isinstance(a, FunctionNode)]

    def enclosing_loops(self, node: ast.AST) -> list[ast.For | ast.While]:
        """Innermost-first ``for``/``while`` loops containing ``node``.

        The chain stops at the nearest enclosing function boundary: a loop
        in an outer function does not make a nested function's body "inside
        a loop" for hot-path purposes.
        """
        loops: list[ast.For | ast.While] = []
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(ancestor, (ast.For, ast.While)):
                loops.append(ancestor)
        return loops

    # -- import-alias resolution ----------------------------------------------

    @cached_property
    def import_aliases(self) -> dict[str, str]:
        """Local name -> canonical dotted module/object path.

        Handles ``import numpy as np`` (``np`` -> ``numpy``), ``from numpy
        import random`` (``random`` -> ``numpy.random``) and ``from
        numpy.random import default_rng as mk`` (``mk`` ->
        ``numpy.random.default_rng``).  Relative imports resolve to their
        dotted tail, which is all the built-in checkers match on.
        """
        table: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        table[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    full = f"{module}.{alias.name}" if module else alias.name
                    table[alias.asname or alias.name] = full
        return table

    def dotted_name(self, node: ast.AST) -> str | None:
        """Literal dotted form of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, through import aliases.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when the
        module did ``import numpy as np``.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.import_aliases.get(head, head)
        return f"{base}.{rest}" if rest else base

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call's callee."""
        return self.resolve(node.func)

    # -- diagnostic construction ----------------------------------------------

    def diagnostic(
        self,
        node: ast.AST,
        checker_id: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` anchored at ``node``."""
        return Diagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            checker_id=checker_id,
            message=message,
            severity=severity,
        )
