"""RNG discipline checkers (REP101, REP102).

The library's determinism contract (``repro/utils/rng.py``): every
stochastic component takes a ``seed``/``rng`` argument and coerces it with
``derive_rng``/``spawn_rngs``.  Randomness constructed anywhere else — a
bare ``np.random.default_rng()``, the legacy ``np.random.<dist>`` globals,
or the stdlib ``random`` module — cannot be injected by experiments and
silently breaks seed reproducibility.

* **REP101** — direct RNG construction/use outside ``repro/utils/rng.py``:
  ``numpy.random.default_rng``, ``numpy.random.RandomState``, any legacy
  ``numpy.random`` distribution global (``numpy.random.random``,
  ``numpy.random.choice``, ...), any ``random.*`` stdlib call, and
  ``numpy.random.SeedSequence()`` *without* explicit entropy (with
  explicit entropy it is deterministic and allowed — the world sampler
  derives per-world children that way).
* **REP102** — a function body calls ``derive_rng``/``spawn_rngs``/
  ``RngStream`` but no enclosing function declares a ``seed``/``rng``-like
  parameter and the call's seed argument is not a compile-time constant:
  the randomness is real but not injectable from the outside.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.checkers.base import Checker
from repro.analysis.context import FunctionNode, ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

#: The one module allowed to construct generators directly.
RNG_MODULE_SUFFIX = "repro/utils/rng.py"

#: Deterministic-by-construction numpy.random attributes (never flagged).
_ALLOWED_NUMPY_RANDOM = frozenset({"Generator", "BitGenerator", "PCG64", "Philox"})

#: stdlib ``random`` helpers that involve no global-state randomness.
_ALLOWED_STDLIB_RANDOM = frozenset({"Random", "SystemRandom", "getstate", "setstate"})

#: Callables that coerce seeds under the contract.
_DERIVERS = frozenset(
    {
        "derive_rng",
        "spawn_rngs",
        "repro.utils.rng.derive_rng",
        "repro.utils.rng.spawn_rngs",
        "RngStream",
        "repro.utils.rng.RngStream",
    }
)

_SEED_PARAM_NAMES = frozenset({"seed", "rng", "seed_like", "random_state", "seeds"})


def _function_params(fn: FunctionNode) -> Iterable[ast.arg]:
    args = fn.args
    yield from args.posonlyargs
    yield from args.args
    yield from args.kwonlyargs
    if args.vararg:
        yield args.vararg
    if args.kwarg:
        yield args.kwarg


def _declares_seed_param(fn: FunctionNode) -> bool:
    for param in _function_params(fn):
        if param.arg in _SEED_PARAM_NAMES:
            return True
        annotation = param.annotation
        if annotation is not None and "SeedLike" in ast.dump(annotation):
            return True
    return False


@register
class DirectRngChecker(Checker):
    """REP101: all generator construction must live in ``utils/rng.py``."""

    id = "REP101"
    name = "rng-discipline"
    description = (
        "no direct numpy.random / stdlib random calls outside repro/utils/rng.py; "
        "route through derive_rng/spawn_rngs"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.path_endswith(RNG_MODULE_SUFFIX)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved is None:
                continue
            if resolved == "random" and "random" not in ctx.import_aliases:
                continue  # a local callable that happens to be named 'random'
            verdict = self._classify(resolved, node)
            if verdict is not None:
                yield ctx.diagnostic(node, self.id, verdict)

    def _classify(self, resolved: str, node: ast.Call) -> str | None:
        if resolved.startswith("numpy.random."):
            attr = resolved.removeprefix("numpy.random.")
            if attr in _ALLOWED_NUMPY_RANDOM:
                return None
            if attr == "SeedSequence":
                if node.args or node.keywords:
                    return None  # explicit entropy: deterministic derivation
                return (
                    "numpy.random.SeedSequence() without entropy draws from the OS; "
                    "pass explicit entropy or use derive_rng"
                )
            return (
                f"direct call to numpy.random.{attr}; construct generators via "
                "repro.utils.rng.derive_rng/spawn_rngs so seeds stay injectable"
            )
        if resolved == "random" or resolved.startswith("random."):
            attr = resolved.removeprefix("random.")
            if attr in _ALLOWED_STDLIB_RANDOM:
                return None
            return (
                f"stdlib random.{attr} uses hidden global state; use the "
                "numpy Generator passed down from derive_rng instead"
            )
        return None


@register
class SeedInjectabilityChecker(Checker):
    """REP102: functions that derive randomness must accept a seed."""

    id = "REP102"
    name = "seed-injectability"
    description = (
        "functions calling derive_rng/spawn_rngs must take a seed/rng parameter "
        "(or derive from a constant) so callers control determinism"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not (ctx.path_endswith(RNG_MODULE_SUFFIX) or ctx.is_test_module)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node)
            if resolved not in _DERIVERS:
                continue
            if self._seed_is_injectable(node):
                continue
            enclosing = ctx.enclosing_functions(node)
            if not enclosing:
                yield ctx.diagnostic(
                    node,
                    self.id,
                    "randomness derived at module scope with no injectable seed",
                )
                continue
            if any(_declares_seed_param(fn) for fn in enclosing):
                continue
            yield ctx.diagnostic(
                node,
                self.id,
                f"'{enclosing[0].name}' derives randomness but declares no "
                "seed/rng parameter; callers cannot make it reproducible",
            )

    @staticmethod
    def _seed_is_injectable(node: ast.Call) -> bool:
        """True when the seed expression is deterministic or injected.

        Three shapes qualify: a bare literal (``derive_rng(42)`` — constant,
        hence reproducible); an expression mentioning a seed/rng-named
        attribute (``derive_rng(config.seed + 10)`` — the offset keeps
        streams disjoint while the config seed stays in control); or a
        seed/rng-named local (``derive_rng(seed)`` where ``seed`` came from
        an enclosing scope the parameter check may not see).
        """
        candidates: list[ast.expr] = list(node.args[:1])
        candidates.extend(
            kw.value for kw in node.keywords if kw.arg in ("seed", "entropy")
        )
        for arg in candidates:
            if isinstance(arg, ast.Constant) and arg.value is not None:
                return True
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute) and (
                    "seed" in sub.attr or "rng" in sub.attr
                ):
                    return True
                if isinstance(sub, ast.Name) and sub.id in _SEED_PARAM_NAMES:
                    return True
        return False
