"""Mutable default argument checker (REP401).

A mutable default (``def f(xs=[])``) is evaluated once at definition time
and shared across calls — classic aliasing bug, and in this codebase a
determinism hazard too: a cache-like default that accumulates state makes
a function's output depend on call history rather than on its arguments
and seed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.checkers.base import Checker
from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.deque",
        "collections.Counter",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.array",
    }
)


def _is_mutable_default(ctx: ModuleContext, node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node)
        return resolved in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultChecker(Checker):
    """REP401: no mutable default argument values."""

    id = "REP401"
    name = "mutable-defaults"
    description = "mutable default argument (list/dict/set/array); default to None"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            defaults = [*args.defaults, *[d for d in args.kw_defaults if d is not None]]
            for default in defaults:
                if _is_mutable_default(ctx, default):
                    yield ctx.diagnostic(
                        default,
                        self.id,
                        f"mutable default argument in '{node.name}'; use None "
                        "and construct inside the body",
                    )
