"""Checker interface.

A checker is a stateless object with an ``id`` (the suppression/selection
handle, e.g. ``REP101``), a human ``name``, and a :meth:`Checker.check`
method mapping a :class:`~repro.analysis.context.ModuleContext` to an
iterable of diagnostics.  Checkers must not keep per-file state on ``self``
— the same instance is reused across every analyzed module.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic, Severity


class Checker(abc.ABC):
    """Base class for all reprolint checkers."""

    #: Stable identifier used in reports and suppression comments.
    id: str
    #: Short kebab-case name shown by ``--list-checkers``.
    name: str
    #: One-line description of the invariant being enforced.
    description: str
    #: Default severity for this checker's diagnostics.
    severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        """Yield diagnostics for one module."""

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Module filter; override to scope a checker to certain paths."""
        return True
