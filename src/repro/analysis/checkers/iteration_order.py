"""Nondeterministic iteration-order checker (REP201).

Python ``set``/``frozenset`` iteration order depends on element hashes and
insertion history.  When that order reaches an output — a list that gets
returned, graph edges being added, a ``yield`` — two runs with the same
seed can produce differently-ordered (and, after downstream sampling,
differently-*valued*) results.  The fix is ``sorted(...)`` at the point of
iteration.

The checker is deliberately two-sided to keep the signal clean:

1. the iterable must be *known set-like*: a set/frozenset literal, a
   ``set()``/``frozenset()`` call, a set comprehension, a set-method result
   (``a.union(b)``, ``a - b`` is out of scope), or a local name whose every
   assignment in the enclosing function is one of those;
2. the order must *reach output*: the loop body appends/extends/inserts,
   assigns into a subscript, or yields — or the set feeds an
   order-preserving constructor (``list``, ``tuple``, ``np.array``,
   ``np.fromiter``, ``enumerate``, ``itertools.chain``) or an unsorted
   comprehension.

Order-insensitive folds (``sum``, ``min``, ``max``, ``len``, ``any``,
``all``, ``set``, ``frozenset``, ``sorted``) are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.checkers.base import Checker
from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Set methods returning sets (order still hash-dependent).
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Consumers for which element order is irrelevant.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {
        "sorted",
        "sum",
        "min",
        "max",
        "len",
        "any",
        "all",
        "set",
        "frozenset",
        "math.fsum",
        "numpy.sort",
        "numpy.unique",
    }
)

#: Consumers that materialise the (arbitrary) order into a sequence.
_ORDER_PRESERVING_CONSUMERS = frozenset(
    {
        "list",
        "tuple",
        "enumerate",
        "numpy.array",
        "numpy.asarray",
        "numpy.fromiter",
        "itertools.chain",
    }
)

_ACCUMULATING_METHODS = frozenset({"append", "extend", "insert", "appendleft", "add_edge"})


def _set_assignments(fn: ast.AST, name: str) -> list[ast.expr] | None:
    """Every value ever assigned to ``name`` inside ``fn`` (None if opaque).

    Returns ``None`` when an assignment target we cannot see through (e.g.
    tuple unpacking, augmented assignment) writes the name.
    """
    values: list[ast.expr] = []
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, (ast.AugAssign,)):
            targets, value = [node.target], None
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if value is None:
                    return None
                values.append(value)
            elif any(
                isinstance(t, ast.Name) and t.id == name
                for t in ast.walk(target)
                if t is not target
            ):
                return None  # written through unpacking: opaque
    return values


class _SetLikeness:
    """Decides whether an expression is known to evaluate to a set."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    def is_set_like(self, node: ast.expr, fn: ast.AST | None, depth: int = 0) -> bool:
        if depth > 4:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            resolved = self.ctx.resolve_call(node)
            if resolved in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_RETURNING_METHODS
                and fn is not None
                and self.is_set_like(node.func.value, fn, depth + 1)
            ):
                return True
            return False
        if isinstance(node, ast.Name) and fn is not None:
            values = _set_assignments(fn, node.id)
            if values:  # None (opaque) and [] (never assigned here) both fail
                return all(self.is_set_like(v, fn, depth + 1) for v in values)
        return False


@register
class IterationOrderChecker(Checker):
    """REP201: hash-ordered iteration must not reach ordered output."""

    id = "REP201"
    name = "iteration-order"
    description = (
        "iterating a set where order reaches output (appends, yields, arrays) "
        "without sorted(...) is run-to-run nondeterministic"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.is_test_module

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        likeness = _SetLikeness(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                fn = self._enclosing_scope(ctx, node)
                if likeness.is_set_like(node.iter, fn) and self._loop_reaches_output(
                    node
                ):
                    yield ctx.diagnostic(
                        node.iter,
                        self.id,
                        "iteration over a set reaches ordered output; "
                        "wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                fn = self._enclosing_scope(ctx, node)
                first = node.generators[0]
                if likeness.is_set_like(first.iter, fn) and not self._comp_is_folded(
                    ctx, node
                ):
                    yield ctx.diagnostic(
                        first.iter,
                        self.id,
                        "comprehension over a set materialises hash order; "
                        "wrap the iterable in sorted(...)",
                    )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve_call(node)
                if resolved in _ORDER_PRESERVING_CONSUMERS and node.args:
                    fn = self._enclosing_scope(ctx, node)
                    if likeness.is_set_like(node.args[0], fn):
                        yield ctx.diagnostic(
                            node,
                            self.id,
                            f"{resolved}(...) of a set materialises hash order; "
                            "use sorted(...) instead",
                        )

    @staticmethod
    def _enclosing_scope(ctx: ModuleContext, node: ast.AST) -> ast.AST:
        functions = ctx.enclosing_functions(node)
        return functions[0] if functions else ctx.tree

    @staticmethod
    def _loop_reaches_output(loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Return) and node.value is not None:
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACCUMULATING_METHODS
            ):
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                if any(isinstance(t, ast.Subscript) for t in targets):
                    # Writes like out[i] = ... are only order-dependent when
                    # the index advances with the loop; a write keyed by the
                    # loop element itself (mask[v] = True) is commutative.
                    for t in targets:
                        if isinstance(t, ast.Subscript) and not isinstance(
                            t.slice, (ast.Name, ast.Constant)
                        ):
                            return True
        return False

    def _comp_is_folded(self, ctx: ModuleContext, comp: ast.AST) -> bool:
        """True when the comprehension feeds an order-insensitive consumer."""
        parent = ctx.parents.get(comp)
        if isinstance(parent, ast.Call):
            resolved = ctx.resolve_call(parent)
            if resolved in _ORDER_INSENSITIVE_CONSUMERS:
                return True
        return isinstance(parent, (ast.SetComp, ast.DictComp))
