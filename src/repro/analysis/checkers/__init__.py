"""Built-in checker catalogue.

Importing this package registers every built-in checker with
:mod:`repro.analysis.registry` (each module applies the ``@register``
decorator at import time).  Checker ids are grouped by hundreds:

========  ==========================  =====================================
id        name                        invariant
========  ==========================  =====================================
REP101    rng-discipline              no direct RNG construction outside
                                      ``repro/utils/rng.py``
REP102    seed-injectability          derive_rng/spawn_rngs callers declare
                                      a seed/rng parameter
REP201    iteration-order             set iteration must not reach ordered
                                      output unsorted
REP301    float-equality              no ==/!= on float expressions
REP401    mutable-defaults            no mutable default arguments
REP501    probability-literal         literal probabilities lie in [0, 1]
REP502    probability-validation      graph/cascades entry points validate
                                      probability parameters
REP601    linear-scan-in-loop         no list scans inside hot-path loops
REP602    array-growth-in-loop        no per-iteration array reallocation
========  ==========================  =====================================
"""

from __future__ import annotations

from repro.analysis.checkers import (  # noqa: F401  (imported for registration)
    float_equality,
    iteration_order,
    mutable_defaults,
    probability_domain,
    quadratic_patterns,
    rng_discipline,
)
from repro.analysis.checkers.base import Checker

__all__ = ["Checker"]
