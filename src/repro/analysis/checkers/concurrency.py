"""REP7xx: whole-program concurrency checkers.

These run in project mode (``python -m repro.analysis --project``) against
the cross-linked lock model of :class:`~repro.analysis.project.ProjectContext`:

========  ==========================  =====================================
id        name                        invariant
========  ==========================  =====================================
REP701    guarded-by                  annotated shared attributes are only
                                      touched with their lock held
REP702    lock-order                  the static lock-acquisition graph is
                                      acyclic (no deadlock-prone inversion)
REP703    blocking-under-lock         no I/O, sleeps or waits inside an
                                      exclusive critical section
REP704    resource-release            memmap handles, semaphore slots and
                                      executors are released on all paths
REP705    fault-site-registry         injection-point names exist in
                                      ``runtime/faults.KNOWN_SITES``
========  ==========================  =====================================

The static model is conservative: unresolved calls (callbacks, duck-typed
parameters) contribute nothing, and deliberate exceptions carry a justified
``# reprolint: disable=REP70x`` on the reported line.  The runtime lock
sanitizer (:mod:`repro.runtime.locksan`) validates the same invariants
against real interleavings in CI.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    HeldLock,
    LockRegion,
    ProjectChecker,
    ProjectContext,
)
from repro.analysis.registry import register_project

#: Dotted names that look blocking by suffix but are pure.
_BLOCKING_EXEMPT = frozenset({"os.path.join", "posixpath.join", "ntpath.join"})

#: Fault-API entry points -> positional index of the ``site`` argument
#: (``None`` means keyword-only).
_FAULT_SITE_ARG: dict[str, int | None] = {
    "maybe_fire": 0,
    "take_fault": 0,
    "fire": 0,
    "take": 0,
    "faulty_write_bytes": None,
}


def _held_keys(held: Iterable[HeldLock]) -> set[str]:
    return {h.key for h in held}


def _is_write(node: ast.Attribute) -> bool:
    return isinstance(node.ctx, (ast.Store, ast.Del))


@register_project
class GuardedByChecker(ProjectChecker):
    """REP701 — guarded attributes accessed outside their lock region."""

    id = "REP701"
    name = "guarded-by"
    description = (
        "attributes annotated '# guarded-by: <lock>' must only be read or "
        "written while that lock is held (writes need exclusive mode)"
    )
    severity = Severity.ERROR

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for cls in project.classes.values():
            if not cls.guarded:
                continue
            for method in cls.methods.values():
                if method.name == "__init__":
                    # Construction happens before the object is shared.
                    continue
                yield from self._check_method(project, cls, method)
        yield from self._check_requires_callsites(project)

    def _check_method(
        self, project: ProjectContext, cls: ClassInfo, fn: FunctionInfo
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            if not (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            ):
                continue
            attr = node.attr
            if attr not in cls.guarded:
                continue
            key = cls.guard_key(attr)
            held = project.held_at(fn, node)
            matching = [h for h in held if h.key == key]
            if not matching:
                yield project.diagnostic(
                    fn.module,
                    node,
                    self.id,
                    f"'self.{attr}' is guarded by '{cls.guarded[attr]}' "
                    f"(lock {key}) but accessed without it in "
                    f"{fn.qualname.rsplit('.', 2)[-2]}.{fn.name}",
                )
            elif _is_write(node) and all(h.mode == "shared" for h in matching):
                yield project.diagnostic(
                    fn.module,
                    node,
                    self.id,
                    f"'self.{attr}' is written under a shared (read) hold of "
                    f"{key}; writes need the exclusive lock",
                )

    def _check_requires_callsites(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        for fn in project.functions.values():
            if fn.name == "__init__":
                continue
            for call, target, _dotted in fn.calls:
                if target is None:
                    continue
                callee = project.functions.get(target)
                if callee is None or not callee.requires:
                    continue
                held = _held_keys(project.held_at(fn, call))
                missing = [key for key in callee.requires if key not in held]
                if missing:
                    yield project.diagnostic(
                        fn.module,
                        call,
                        self.id,
                        f"call to {callee.qualname} requires lock(s) "
                        f"{', '.join(missing)} to be held, but "
                        f"{fn.qualname} does not hold them here",
                    )


@register_project
class LockOrderChecker(ProjectChecker):
    """REP702 — cycles in the static lock-acquisition-order graph."""

    id = "REP702"
    name = "lock-order"
    description = (
        "acquiring lock B while holding lock A adds edge A->B; the resulting "
        "graph must be acyclic or two threads can deadlock"
    )
    severity = Severity.ERROR

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        edges: dict[str, set[str]] = {}
        anchors: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]] = {}

        def add_edge(a: str, b: str, fn: FunctionInfo, node: ast.AST) -> None:
            if a == b:
                # Distinct instances share class-keyed names; a same-name
                # edge would flag every pairwise-ordered sibling lock.
                return
            edges.setdefault(a, set()).add(b)
            edges.setdefault(b, set())
            key = (a, b)
            best = anchors.get(key)
            if best is None or self._location(fn, node) < self._location(
                *best
            ):
                anchors[key] = (fn, node)

        for fn in project.functions.values():
            for region in fn.regions:
                item = region.node.items[region.item_index]
                for held in project.held_at(fn, item):
                    add_edge(held.key, region.key, fn, region.node)
            for call, target, _dotted in fn.calls:
                if target is None:
                    continue
                held = project.held_at(fn, call)
                if not held:
                    continue
                acquired = project.locks_acquired(target)
                for h in held:
                    for key in acquired:
                        add_edge(h.key, key, fn, call)

        for component in _tarjan_sccs(edges):
            if len(component) < 2:
                continue
            cycle = sorted(component)
            member_edges = [
                (pair, anchors[pair])
                for pair in anchors
                if pair[0] in component and pair[1] in component
            ]
            fn, node = min(
                (anchor for _pair, anchor in member_edges),
                key=lambda a: self._location(*a),
            )
            yield project.diagnostic(
                fn.module,
                node,
                self.id,
                "lock-order inversion: locks "
                f"{{{', '.join(cycle)}}} are acquired in conflicting orders "
                "across the call graph (potential deadlock)",
            )

    @staticmethod
    def _location(fn: FunctionInfo, node: ast.AST) -> tuple[str, int, int]:
        return (
            fn.module.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
        )


def _tarjan_sccs(edges: dict[str, set[str]]) -> list[frozenset[str]]:
    """Strongly connected components (iterative Tarjan)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[frozenset[str]] = []

    def strongconnect(root: str) -> None:
        work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(frozenset(component))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sccs


@register_project
class BlockingUnderLockChecker(ProjectChecker):
    """REP703 — blocking calls inside exclusive critical sections."""

    id = "REP703"
    name = "blocking-under-lock"
    description = (
        "no file/socket I/O, sleeps, joins or computations that block the "
        "thread while an exclusive lock is held"
    )
    severity = Severity.ERROR

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for fn in project.functions.values():
            offenders: dict[int, tuple[LockRegion, list[str]]] = {}
            blocking: list[tuple[ast.Call, str]] = [
                (call, label)
                for call, label in fn.blocking_calls
                if label not in _BLOCKING_EXEMPT
            ]
            for call, target, _dotted in fn.calls:
                if target is not None and project.is_blocking(target):
                    blocking.append((call, f"{target} (blocks transitively)"))
            for call, label in blocking:
                for held in project.held_at(fn, call):
                    region = held.region
                    if region is None or not region.exclusive:
                        continue
                    if self._condition_wait_exempt(region, label):
                        continue
                    entry = offenders.setdefault(
                        id(region.node) ^ hash(region.key), (region, [])
                    )
                    if label not in entry[1]:
                        entry[1].append(label)
            for region, labels in offenders.values():
                yield project.diagnostic(
                    fn.module,
                    region.node,
                    self.id,
                    f"critical section holding {region.key} performs "
                    f"blocking call(s): {', '.join(sorted(labels))}; move "
                    "the blocking work outside the lock",
                )

    @staticmethod
    def _condition_wait_exempt(region: LockRegion, label: str) -> bool:
        """Waiting on the condition you hold releases it — not a block."""
        if region.kind != "condition" or not label.endswith(".wait"):
            return False
        return label in (
            f"self.{region.attr}.wait",
            f"{region.attr}.wait",
        )


@register_project
class ResourceReleaseChecker(ProjectChecker):
    """REP704 — acquired resources must be released on every path."""

    id = "REP704"
    name = "resource-release"
    description = (
        "memmap/file handles, manually acquired lock or semaphore slots and "
        "executors need try/finally or a context manager to be released on "
        "error paths"
    )
    severity = Severity.WARNING

    #: Resolved callee names (exact or trailing) that hand out a handle
    #: requiring an explicit close/flush-and-del.
    _HANDLE_SUFFIXES = ("open_memmap",)
    _EXECUTOR_SUFFIXES = ("ThreadPoolExecutor", "ProcessPoolExecutor")

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for fn in project.functions.values():
            if fn.module.path_endswith("runtime/locksan.py"):
                # The sanitizer *implements* lock acquire/release.
                continue
            finalbodies = [
                stmt
                for stmt in ast.walk(fn.node)
                if isinstance(stmt, ast.Try) and stmt.finalbody
            ]
            yield from self._check_handles(project, fn, finalbodies)
            yield from self._check_acquires(project, fn, finalbodies)

    def _finalbody_references(
        self, finalbodies: list[ast.Try], name: str
    ) -> bool:
        for try_node in finalbodies:
            for stmt in try_node.finalbody:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Name) and node.id == name:
                        return True
        return False

    def _finalbody_calls(
        self, fn: FunctionInfo, finalbodies: list[ast.Try], dotted: str
    ) -> bool:
        for try_node in finalbodies:
            for stmt in try_node.finalbody:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and fn.module.dotted_name(node.func) == dotted
                    ):
                        return True
        return False

    def _is_returned(self, fn: FunctionInfo, name: str) -> bool:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
        return False

    def _check_handles(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        finalbodies: list[ast.Try],
    ) -> Iterator[Diagnostic]:
        for stmt in ast.walk(fn.node):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            name = stmt.targets[0].id
            resolved = fn.module.resolve(stmt.value.func) or ""
            tail = resolved.split(".")[-1]
            if tail in self._HANDLE_SUFFIXES:
                if self._finalbody_references(
                    finalbodies, name
                ) or self._is_returned(fn, name):
                    continue
                yield project.diagnostic(
                    fn.module,
                    stmt,
                    self.id,
                    f"memmap handle '{name}' from {tail}() has no "
                    "try/finally release; an exception leaks the mapping "
                    "and can leave a partially written file",
                    severity=self.severity,
                )
            elif tail in self._EXECUTOR_SUFFIXES:
                if (
                    self._finalbody_references(finalbodies, name)
                    or self._is_returned(fn, name)
                ):
                    continue
                yield project.diagnostic(
                    fn.module,
                    stmt,
                    self.id,
                    f"executor '{name}' is never shut down on error paths; "
                    "use 'with' or try/finally shutdown()",
                    severity=self.severity,
                )

    def _check_acquires(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        finalbodies: list[ast.Try],
    ) -> Iterator[Diagnostic]:
        for call, _target, dotted in fn.calls:
            if dotted is None or not dotted.endswith(".acquire"):
                continue
            base = dotted[: -len(".acquire")]
            if self._finalbody_calls(fn, finalbodies, f"{base}.release"):
                continue
            yield project.diagnostic(
                fn.module,
                call,
                self.id,
                f"'{dotted}()' has no matching '{base}.release()' in a "
                "finally block of this function; an exception between "
                "acquire and release leaks the slot",
                severity=self.severity,
            )


@register_project
class FaultSiteRegistryChecker(ProjectChecker):
    """REP705 — injection-point names must exist in KNOWN_SITES."""

    id = "REP705"
    name = "fault-site-registry"
    description = (
        "every maybe_fire/take_fault/faulty_write_bytes site string must be "
        "registered in runtime/faults.KNOWN_SITES so chaos plans can target "
        "it"
    )
    severity = Severity.ERROR

    def check(self, project: ProjectContext) -> Iterator[Diagnostic]:
        known = project.known_sites
        if known is None:
            # No fault registry in this project — nothing to validate.
            return
        for fn in project.functions.values():
            if fn.module.path_endswith("runtime/faults.py"):
                continue
            for call, _target, _dotted in fn.calls:
                resolved = fn.module.resolve(call.func)
                if resolved is None:
                    continue
                tail = resolved.split(".")[-1]
                if tail not in _FAULT_SITE_ARG:
                    continue
                if "." in resolved and not resolved.startswith("repro."):
                    continue
                if tail in ("fire", "take") and not resolved.startswith(
                    "repro."
                ):
                    # Unqualified .fire/.take are too generic to claim.
                    continue
                site = self._site_argument(project, fn, call, tail)
                if site is None:
                    continue
                if site not in known:
                    yield project.diagnostic(
                        fn.module,
                        call,
                        self.id,
                        f"fault site {site!r} is not registered in "
                        "runtime/faults.KNOWN_SITES; the injection point "
                        "can never fire from a chaos plan",
                    )

    def _site_argument(
        self,
        project: ProjectContext,
        fn: FunctionInfo,
        call: ast.Call,
        tail: str,
    ) -> str | None:
        pos = _FAULT_SITE_ARG[tail]
        arg: ast.expr | None = None
        for keyword in call.keywords:
            if keyword.arg == "site":
                arg = keyword.value
                break
        if arg is None and pos is not None and len(call.args) > pos:
            arg = call.args[pos]
        if arg is None:
            return None
        return project.resolve_site_argument(fn.module, arg)
