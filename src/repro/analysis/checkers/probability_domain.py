"""Probability-domain hygiene checkers (REP501, REP502).

The paper's model is ``p : E -> (0, 1]`` and every estimator output lives
in ``[0, 1]``; a probability outside the unit interval is always a bug.

* **REP501** — a *literal* probability outside ``[0, 1]``: any numeric
  literal bound to a probability-named parameter, either at a call site
  (``assign_fixed(g, p=1.5)``) or as a parameter default
  (``def f(p=2.0)``).  Applies everywhere, including tests — an invalid
  fixture invalidates whatever it fixes.
* **REP502** — an *unvalidated* probability parameter on a public function
  or constructor in the ``graph``/``cascades`` packages: the parameter is
  used in computation without first passing through
  ``check_probability``/``check_fraction`` and without being forwarded to
  another callable (which is then responsible for validating).  These two
  packages are where probabilities enter the system — everything downstream
  (index, influence, median) trusts them.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.checkers.base import Checker
from repro.analysis.context import FunctionNode, ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register


def _is_probability_name(name: str) -> bool:
    return (
        name in ("p", "prob", "probability")
        or name.endswith("_prob")
        or name.endswith("_probability")
    )


def _literal_number(node: ast.expr) -> float | None:
    """Numeric value of a literal (handling unary +/-), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


@register
class ProbabilityLiteralChecker(Checker):
    """REP501: literal probabilities must lie in [0, 1]."""

    id = "REP501"
    name = "probability-literal"
    description = "literal probability outside [0, 1] at a call site or default"

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg is None or not _is_probability_name(kw.arg):
                        continue
                    value = _literal_number(kw.value)
                    if value is not None and not 0.0 <= value <= 1.0:
                        yield ctx.diagnostic(
                            kw.value,
                            self.id,
                            f"literal probability {kw.arg}={value:g} outside [0, 1]",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)

    def _check_defaults(
        self, ctx: ModuleContext, fn: FunctionNode
    ) -> Iterable[Diagnostic]:
        args = fn.args
        positional = [*args.posonlyargs, *args.args]
        for param, default in zip(positional[len(positional) - len(args.defaults) :], args.defaults):
            yield from self._check_one_default(ctx, fn, param, default)
        for param, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                yield from self._check_one_default(ctx, fn, param, default)

    def _check_one_default(
        self, ctx: ModuleContext, fn: FunctionNode, param: ast.arg, default: ast.expr
    ) -> Iterable[Diagnostic]:
        if not _is_probability_name(param.arg):
            return
        value = _literal_number(default)
        if value is not None and not 0.0 <= value <= 1.0:
            yield ctx.diagnostic(
                default,
                self.id,
                f"default probability {param.arg}={value:g} of '{fn.name}' "
                "outside [0, 1]",
            )


#: Callables accepted as validating a probability argument.
_VALIDATORS = frozenset(
    {
        "check_probability",
        "check_fraction",
        "repro.utils.validation.check_probability",
        "repro.utils.validation.check_fraction",
    }
)


@register
class UnvalidatedProbabilityChecker(Checker):
    """REP502: graph/cascades entry points must validate probability params."""

    id = "REP502"
    name = "probability-validation"
    description = (
        "public graph/cascades functions must run probability parameters "
        "through check_probability/check_fraction before computing with them"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("graph", "cascades") and not ctx.is_test_module

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") and node.name != "__init__":
                continue
            if ctx.enclosing_functions(node):
                continue  # nested helpers inherit the caller's validation
            for param in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
                if not _is_probability_name(param.arg):
                    continue
                if self._is_validated(ctx, node, param.arg):
                    continue
                if self._only_forwarded(node, param.arg):
                    continue
                yield ctx.diagnostic(
                    param,
                    self.id,
                    f"probability parameter '{param.arg}' of '{node.name}' is "
                    "used without check_probability/check_fraction validation",
                )

    @staticmethod
    def _is_validated(ctx: ModuleContext, fn: FunctionNode, name: str) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve_call(node) not in _VALIDATORS:
                continue
            if node.args and isinstance(node.args[0], ast.Name) and node.args[0].id == name:
                return True
        return False

    @staticmethod
    def _only_forwarded(fn: FunctionNode, name: str) -> bool:
        """True when every read of ``name`` forwards it to another callable.

        Delegation moves the validation obligation to the callee, which this
        checker (or the callee's own tests) covers; what REP502 forbids is
        *computing* with an unchecked probability.
        """
        reads = 0
        forwarded = 0
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            for arg in (*node.args, *[kw.value for kw in node.keywords]):
                if isinstance(arg, ast.Name) and arg.id == name:
                    forwarded += 1
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and node.id == name and isinstance(
                node.ctx, ast.Load
            ):
                reads += 1
        return reads > 0 and reads == forwarded
