"""Hot-path quadratic-pattern checkers (REP601, REP602).

The ``graph``/``cascades``/``influence`` packages are the system's inner
loops — a cascade index build runs them millions of times.  Two accidental
O(n^2) shapes keep sneaking into such code:

* **REP601** — linear scans inside a loop: ``xs.index(v)`` or ``v in xs``
  where ``xs`` is a locally-built ``list``.  Each is O(len) per iteration;
  use a set/dict for membership or precompute an index map.
* **REP602** — array growth inside a loop: ``np.concatenate``/``np.append``
  (each call copies everything accumulated so far) or ``arr += [...]``-style
  list growth feeding an array.  Collect parts in a list and concatenate
  once after the loop.

Both checkers fire only inside ``for``/``while`` bodies in the hot
packages, and REP601's membership rule requires the container to be
provably a list (literal, ``list()`` call, or a name all of whose local
assignments are lists) so set/dict membership — the fix — never triggers
it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.checkers.base import Checker
from repro.analysis.context import ModuleContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register

HOT_PACKAGES = ("graph", "cascades", "influence")

_GROWTH_CALLS = frozenset({"numpy.concatenate", "numpy.append", "numpy.hstack", "numpy.vstack"})


def _list_assignments(scope: ast.AST, name: str) -> list[ast.expr]:
    values: list[ast.expr] = []
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    values.append(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                values.append(node.value)
    return values


def _is_list_expr(ctx: ModuleContext, node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve_call(node) == "list"
    return False


def _is_known_list(ctx: ModuleContext, scope: ast.AST, node: ast.expr) -> bool:
    if _is_list_expr(ctx, node):
        return True
    if isinstance(node, ast.Name):
        values = _list_assignments(scope, node.id)
        return bool(values) and all(_is_list_expr(ctx, v) for v in values)
    return False


class _HotLoopChecker(Checker):
    """Shared scoping: only hot packages, only inside loops."""

    severity = Severity.WARNING

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package(*HOT_PACKAGES) and not ctx.is_test_module

    def _scope(self, ctx: ModuleContext, node: ast.AST) -> ast.AST:
        functions = ctx.enclosing_functions(node)
        return functions[0] if functions else ctx.tree


@register
class LinearScanInLoopChecker(_HotLoopChecker):
    """REP601: O(n) list scans repeated inside a loop."""

    id = "REP601"
    name = "linear-scan-in-loop"
    description = (
        "list.index / 'in <list>' inside a hot-path loop is quadratic; "
        "use a set/dict or a precomputed index map"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not ctx.enclosing_loops(node):
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "index"
                and _is_known_list(ctx, self._scope(ctx, node), node.func.value)
            ):
                yield ctx.diagnostic(
                    node,
                    self.id,
                    "list.index(...) inside a loop is a repeated linear scan; "
                    "precompute a value -> position dict",
                    self.severity,
                )
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                scope = self._scope(ctx, node)
                for op, comparator in zip(node.ops, node.comparators):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    if _is_known_list(ctx, scope, comparator):
                        yield ctx.diagnostic(
                            node,
                            self.id,
                            "membership test against a list inside a loop is "
                            "quadratic; keep a parallel set",
                            self.severity,
                        )


@register
class ArrayGrowthInLoopChecker(_HotLoopChecker):
    """REP602: per-iteration array reallocation."""

    id = "REP602"
    name = "array-growth-in-loop"
    description = (
        "np.concatenate/np.append inside a hot-path loop copies O(total) per "
        "iteration; batch parts and concatenate once"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not ctx.enclosing_loops(node):
                continue
            resolved = ctx.resolve_call(node)
            if resolved in _GROWTH_CALLS:
                short = resolved.replace("numpy.", "np.")
                yield ctx.diagnostic(
                    node,
                    self.id,
                    f"{short} inside a loop reallocates the accumulated array "
                    "every iteration; collect parts and concatenate after the loop",
                    self.severity,
                )
