"""Float equality checker (REP301).

Probabilities, Jaccard costs and spread estimates are floats produced by
arithmetic; comparing them with ``==``/``!=`` is at best fragile and at
worst a silent correctness bug (the seed-789 median regression fixed in
this repo came from exactly such a hidden exact-comparison shortcut).  Use
``math.isclose``/``np.isclose``, an explicit tolerance, or restructure to
an inequality (``p <= 0.0``).

An operand is considered float-valued when it is a float literal, a
``float(...)`` cast, an arithmetic expression containing a float literal
or a true division, or a name annotated ``float`` in the enclosing
function's signature.  Comparing against the *integer* literals ``0``/``1``
etc. is not flagged (int equality is exact); test modules are skipped
entirely — asserting exact reproducibility there is the point.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.checkers.base import Checker
from repro.analysis.context import FunctionNode, ModuleContext
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import register


def _annotated_float_params(fn: FunctionNode) -> frozenset[str]:
    names = set()
    args = fn.args
    for param in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        ann = param.annotation
        if isinstance(ann, ast.Name) and ann.id == "float":
            names.add(param.arg)
    return frozenset(names)


def _is_float_valued(node: ast.expr, float_names: frozenset[str]) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_float_valued(node.operand, float_names)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_float_valued(node.left, float_names) or _is_float_valued(
            node.right, float_names
        )
    return False


@register
class FloatEqualityChecker(Checker):
    """REP301: no ``==``/``!=`` between float-valued expressions."""

    id = "REP301"
    name = "float-equality"
    description = (
        "== / != on float expressions (probabilities, costs); use isclose, "
        "a tolerance, or an inequality"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.is_test_module

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            float_names = self._float_names_in_scope(ctx, node)
            operands = [node.left, *node.comparators]
            for left, op, right in zip(operands, node.ops, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_valued(left, float_names) or _is_float_valued(
                    right, float_names
                ):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.diagnostic(
                        node,
                        self.id,
                        f"exact float comparison with '{symbol}'; use "
                        "math.isclose/np.isclose or an inequality",
                    )
                    break

    @staticmethod
    def _float_names_in_scope(ctx: ModuleContext, node: ast.AST) -> frozenset[str]:
        names: set[str] = set()
        for fn in ctx.enclosing_functions(node):
            names.update(_annotated_float_params(fn))
        return frozenset(names)
