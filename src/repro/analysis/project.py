"""Project-wide analysis: the call graph and lock model behind REP7xx.

The per-module pass (:mod:`repro.analysis.runner`) sees one file at a time,
which is enough for determinism lint but blind to the properties that made
PR 4/5's serving stack correct: *this* attribute is only touched under
*that* lock, locks are always taken in *this* order, nothing blocks while
holding one.  Those contracts span modules — ``SphereService`` holds its
generation lock while calling into ``LRUCache`` and ``SingleFlight`` — so
checking them needs every module parsed at once.

:class:`ProjectContext` builds that whole-program view:

* every class's **lock attributes** (``self._lock = make_lock(...)``,
  ``threading.Lock()``, ``threading.Condition()``, a ``ReadersWriterLock``
  constructor) with their kind (mutex / condition / rwlock / semaphore);
* **guarded-by annotations** — a ``# guarded-by: _lock`` comment on an
  attribute assignment declares that every later read/write of the
  attribute must happen with that lock held;
* **requires-lock annotations** — ``# requires-lock: _lock`` on (or just
  above) a ``def`` declares that callers enter with the lock already held,
  so the body is checked as if inside the region and every call site is
  checked to actually hold it;
* **lock regions** inferred from ``with self._lock:`` statements,
  including shared/exclusive ``with self._lock.read()`` / ``.write()``
  regions of a readers-writer lock and function-local locks;
* a **call graph** resolving ``self.method()``, ``self.attr.method()``
  (through constructor-derived attribute types), and imported project
  functions, from which lock-acquisition sets and blocking behaviour
  propagate transitively;
* the registered **fault sites** (``runtime/faults.KNOWN_SITES``) and
  module-level string constants, so injection-point names are validated
  against the catalogue.

Nested functions are *folded* into their enclosing top-level function or
method: a closure's attribute accesses and calls are attributed to the
method that defines it, and it inherits that method's lexical lock regions
and ``requires-lock`` annotations.  This matches how the serving stack uses
closures (they run on the defining thread's lock context or re-acquire
explicitly) and keeps the model simple enough to be auditable.

The model is deliberately conservative where it cannot resolve a call
(first-class callbacks, duck-typed parameters): unresolved calls contribute
no edges and no blocking verdicts.  The runtime lock sanitizer
(:mod:`repro.runtime.locksan`) covers exactly that gap by observing real
acquisition orders under the concurrency hammer.
"""

from __future__ import annotations

import abc
import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Mapping, Sequence

from repro.analysis.checkers.base import Checker
from repro.analysis.context import FunctionNode, ModuleContext
from repro.analysis.diagnostics import Diagnostic, Severity

#: ``# guarded-by: <lock attr>`` on an attribute assignment.
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<attr>[A-Za-z_]\w*)")

#: ``# requires-lock: <attr>[, <attr>]`` on or immediately above a ``def``.
_REQUIRES_LOCK = re.compile(
    r"#\s*requires-lock:\s*(?P<attrs>[A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)"
)

#: Constructor dotted names recognised as lock factories, by kind.
_LOCK_CTORS: dict[str, str] = {
    "threading.Lock": "mutex",
    "threading.RLock": "mutex",
    "repro.runtime.locksan.make_lock": "mutex",
    "make_lock": "mutex",
    "threading.Condition": "condition",
    "repro.runtime.locksan.make_condition": "condition",
    "make_condition": "condition",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
}

#: Lock kinds whose ``with`` regions are exclusive critical sections.
_EXCLUSIVE_KINDS = frozenset({"mutex", "condition"})


def module_name_for_path(path: str) -> str:
    """Dotted module name derived from a file path.

    ``src/repro/serve/cache.py`` -> ``repro.serve.cache``; falls back to
    the stem for paths outside a recognisable package root.
    """
    posix = PurePosixPath(str(path).replace("\\", "/"))
    parts = list(posix.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src") :]
    elif "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else str(posix.stem)


def _comment_table(source: str) -> dict[int, str]:
    """Physical line -> comment text (tolerates broken sources)."""
    table: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                table[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return table


def _comment_in_span(
    comments: Mapping[int, str], node: ast.stmt
) -> Iterator[str]:
    end = getattr(node, "end_lineno", None) or node.lineno
    for line in range(node.lineno, end + 1):
        comment = comments.get(line)
        if comment is not None:
            yield comment


def _self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass(frozen=True)
class LockAttr:
    """One lock-typed attribute of a class."""

    attr: str
    kind: str  # mutex | condition | rwlock | semaphore
    key: str  # e.g. "LRUCache._lock" — identity in the lock-order graph


@dataclass(frozen=True)
class LockRegion:
    """One ``with``-statement lock acquisition."""

    node: ast.With
    item_index: int
    key: str
    kind: str
    attr: str
    exclusive: bool


@dataclass(frozen=True)
class HeldLock:
    """A lock held at some program point, with how it is held."""

    key: str
    mode: str  # "exclusive" | "shared" | "unknown" (requires-lock)
    region: LockRegion | None = None


@dataclass
class FunctionInfo:
    """One top-level function or method, with nested defs folded in."""

    qualname: str  # "repro.serve.cache.LRUCache.get"
    name: str
    node: FunctionNode
    module: ModuleContext
    class_info: "ClassInfo | None"
    requires: tuple[str, ...] = ()  # resolved lock keys of this def
    local_locks: dict[str, str] = field(default_factory=dict)
    regions: list[LockRegion] = field(default_factory=list)
    #: id(withitem) -> region, for held-lock computation.
    regions_by_item: dict[int, LockRegion] = field(default_factory=dict)
    #: (call node, resolved project-function qualname or None, raw dotted name).
    calls: list[tuple[ast.Call, str | None, str | None]] = field(
        default_factory=list
    )
    #: Calls to primitives that block (I/O, sleeps, waits), with a label.
    blocking_calls: list[tuple[ast.Call, str]] = field(default_factory=list)
    #: id(def node) -> resolved requires-lock keys, for every def in the fold.
    requires_by_def: dict[int, tuple[str, ...]] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class: its locks, guarded attributes and attribute types."""

    qualname: str  # "repro.serve.cache.LRUCache"
    name: str
    node: ast.ClassDef
    module: ModuleContext
    locks: dict[str, LockAttr] = field(default_factory=dict)
    guarded: dict[str, str] = field(default_factory=dict)  # attr -> lock attr
    #: attr -> project-class qualname, from ``self.x = SomeProjectClass(...)``.
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def guard_key(self, attr: str) -> str:
        """Lock-graph key of the lock guarding ``attr``."""
        return f"{self.name}.{self.guarded[attr]}"


#: Calls that block the calling thread (exact canonical names).
BLOCKING_CALLS = frozenset(
    {
        "open",
        "time.sleep",
        "os.replace",
        "os.rename",
        "os.fsync",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "numpy.load",
        "numpy.save",
        "numpy.lib.format.open_memmap",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.move",
        "shutil.rmtree",
    }
)

#: Attribute suffixes that block (``x.wait()``, ``path.read_text()``, ...).
BLOCKING_SUFFIXES = (
    ".wait",
    ".join",
    ".read_text",
    ".write_text",
    ".read_bytes",
    ".write_bytes",
    ".recv",
    ".sendall",
    ".accept",
)

#: Functions whose thread-block verdict is *not* propagated from their
#: bodies: joining a thread you just spawned is the watchdog pattern, and
#: ``str.join`` shares the suffix.  Matched against the *last* segment.
_JOIN_SUFFIX = ".join"


class ProjectContext:
    """All modules of the project, parsed and cross-linked."""

    def __init__(self, modules: Sequence[ModuleContext]) -> None:
        self.modules = list(modules)
        self.comments: dict[str, dict[int, str]] = {
            ctx.path: _comment_table(ctx.source) for ctx in self.modules
        }
        self.module_names: dict[str, str] = {
            ctx.path: module_name_for_path(ctx.path) for ctx in self.modules
        }
        #: class qualname -> ClassInfo (also indexed by bare class name for
        #: same-module resolution, via _local_classes).
        self.classes: dict[str, ClassInfo] = {}
        #: function qualname -> FunctionInfo (methods included).
        self.functions: dict[str, FunctionInfo] = {}
        #: canonical "module.CONST" -> string value of module-level constants.
        self.constants: dict[str, str] = {}
        #: per-module bare constant names ("path" -> {name: value}).
        self._local_constants: dict[str, dict[str, str]] = {}
        self._local_classes: dict[str, dict[str, str]] = {}
        self._local_functions: dict[str, dict[str, str]] = {}
        #: Registered fault sites, or None when runtime/faults.py is absent.
        self.known_sites: frozenset[str] | None = None
        self._locks_memo: dict[str, frozenset[str]] = {}
        self._locks_visiting: set[str] = set()
        self._blocking_memo: dict[str, bool] = {}
        self._blocking_visiting: set[str] = set()
        self._collect_declarations()
        self._collect_bodies()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ProjectContext":
        """Build a project from in-memory ``{path: source}`` (tests)."""
        return cls(
            [
                ModuleContext.from_source(path, source)
                for path, source in sources.items()
            ]
        )

    @classmethod
    def from_paths(cls, paths: Iterable[str | Path]) -> "ProjectContext":
        modules = []
        for path in paths:
            text = Path(path).read_text(encoding="utf-8")
            modules.append(ModuleContext.from_source(str(path), text))
        return cls(modules)

    def _collect_declarations(self) -> None:
        """Pass 1: classes, their locks/guards, functions, constants, sites."""
        for ctx in self.modules:
            mod = self.module_names[ctx.path]
            comments = self.comments[ctx.path]
            self._local_constants[ctx.path] = {}
            self._local_classes[ctx.path] = {}
            self._local_functions[ctx.path] = {}
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    info = ClassInfo(
                        qualname=f"{mod}.{stmt.name}",
                        name=stmt.name,
                        node=stmt,
                        module=ctx,
                    )
                    self._scan_class_attrs(info, comments)
                    self.classes[info.qualname] = info
                    self._local_classes[ctx.path][stmt.name] = info.qualname
                    for sub in stmt.body:
                        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            fn = FunctionInfo(
                                qualname=f"{info.qualname}.{sub.name}",
                                name=sub.name,
                                node=sub,
                                module=ctx,
                                class_info=info,
                            )
                            info.methods[sub.name] = fn
                            self.functions[fn.qualname] = fn
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = FunctionInfo(
                        qualname=f"{mod}.{stmt.name}",
                        name=stmt.name,
                        node=stmt,
                        module=ctx,
                        class_info=None,
                    )
                    self.functions[fn.qualname] = fn
                    self._local_functions[ctx.path][stmt.name] = fn.qualname
                elif isinstance(stmt, ast.Assign):
                    self._scan_constant(ctx, mod, stmt)
            if ctx.path_endswith("runtime/faults.py"):
                self._scan_known_sites(ctx)

    def _scan_constant(self, ctx: ModuleContext, mod: str, stmt: ast.Assign) -> None:
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            name = stmt.targets[0].id
            self._local_constants[ctx.path][name] = stmt.value.value
            self.constants[f"{mod}.{name}"] = stmt.value.value

    def _scan_known_sites(self, ctx: ModuleContext) -> None:
        for stmt in ast.walk(ctx.tree):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if (
                isinstance(target, ast.Name)
                and target.id == "KNOWN_SITES"
                and isinstance(value, ast.Dict)
            ):
                self.known_sites = frozenset(
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                )
                return

    def _scan_class_attrs(
        self, info: ClassInfo, comments: Mapping[int, str]
    ) -> None:
        """Find lock attributes and guarded-by annotations in a class body."""
        ctx = info.module
        for stmt in ast.walk(info.node):
            targets: list[ast.expr]
            value: ast.expr | None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            else:
                continue
            attr_names = [
                attr for t in targets if (attr := _self_attr(t)) is not None
            ]
            if not attr_names:
                continue
            kind = self._lock_kind(ctx, value)
            for attr in attr_names:
                if kind is not None:
                    info.locks[attr] = LockAttr(
                        attr=attr, kind=kind, key=f"{info.name}.{attr}"
                    )
                for comment in _comment_in_span(comments, stmt):
                    match = _GUARDED_BY.search(comment)
                    if match is not None:
                        info.guarded[attr] = match.group("attr")
                        break

    def _lock_kind(self, ctx: ModuleContext, value: ast.expr | None) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        resolved = ctx.resolve_call(value)
        if resolved is None:
            return None
        kind = _LOCK_CTORS.get(resolved)
        if kind is not None:
            return kind
        if resolved.split(".")[-1].endswith("ReadersWriterLock"):
            return "rwlock"
        return None

    def _collect_bodies(self) -> None:
        """Pass 2: attribute types, regions, calls, requires annotations."""
        for info in self.classes.values():
            self._scan_attr_types(info)
        for fn in self.functions.values():
            self._scan_function(fn)

    def _scan_attr_types(self, info: ClassInfo) -> None:
        ctx = info.module
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            target_class = self._resolve_class(ctx, value.func)
            if target_class is None:
                continue
            for t in targets:
                attr = _self_attr(t)
                if attr is not None:
                    info.attr_types[attr] = target_class

    def _resolve_class(self, ctx: ModuleContext, func: ast.expr) -> str | None:
        resolved = ctx.resolve(func)
        if resolved is None:
            return None
        if resolved in self.classes:
            return resolved
        local = self._local_classes.get(ctx.path, {})
        if resolved in local:
            return local[resolved]
        # ``from repro.serve.cache import LRUCache`` resolves to the class's
        # canonical home; a re-exporting package path may differ — match by
        # trailing class name against known classes with the same name.
        tail = resolved.split(".")[-1]
        candidates = [
            qn
            for qn, cls in self.classes.items()
            if cls.name == tail and resolved.endswith(tail)
        ]
        if len(candidates) == 1 and "." in resolved:
            return candidates[0]
        return None

    def _requires_for_def(
        self, fn: FunctionInfo, node: FunctionNode
    ) -> tuple[str, ...]:
        comments = self.comments[fn.module.path]
        for line in (node.lineno, node.lineno - 1):
            comment = comments.get(line)
            if comment is None:
                continue
            match = _REQUIRES_LOCK.search(comment)
            if match is None:
                continue
            attrs = [a.strip() for a in match.group("attrs").split(",")]
            cls = fn.class_info
            prefix = cls.name if cls is not None else fn.name
            return tuple(f"{prefix}.{attr}" for attr in attrs if attr)
        return ()

    def _scan_function(self, fn: FunctionInfo) -> None:
        ctx = fn.module
        # Local locks: ``state_lock = threading.Lock()`` inside the body.
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                kind = self._lock_kind(ctx, stmt.value)
                if isinstance(target, ast.Name) and kind is not None:
                    fn.local_locks[target.id] = kind
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn.requires_by_def[id(node)] = self._requires_for_def(fn, node)
            elif isinstance(node, ast.With):
                for index, item in enumerate(node.items):
                    region = self._classify_with_item(fn, node, index, item)
                    if region is not None:
                        fn.regions.append(region)
                        fn.regions_by_item[id(item)] = region
            elif isinstance(node, ast.Call):
                target = self._resolve_call_target(fn, node)
                dotted = ctx.dotted_name(node.func)
                fn.calls.append((node, target, dotted))
                label = self._blocking_label(ctx, node, dotted)
                if label is not None:
                    fn.blocking_calls.append((node, label))
        fn.requires = fn.requires_by_def.get(id(fn.node), ())

    def _classify_with_item(
        self, fn: FunctionInfo, node: ast.With, index: int, item: ast.withitem
    ) -> LockRegion | None:
        expr = item.context_expr
        cls = fn.class_info
        attr = _self_attr(expr)
        if attr is not None and cls is not None:
            lock = cls.locks.get(attr)
            if lock is not None and lock.kind in _EXCLUSIVE_KINDS:
                return LockRegion(
                    node=node,
                    item_index=index,
                    key=lock.key,
                    kind=lock.kind,
                    attr=attr,
                    exclusive=True,
                )
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("read", "write")
        ):
            base_attr = _self_attr(expr.func.value)
            if base_attr is not None and cls is not None:
                lock = cls.locks.get(base_attr)
                if lock is not None and lock.kind == "rwlock":
                    return LockRegion(
                        node=node,
                        item_index=index,
                        key=lock.key,
                        kind="rwlock",
                        attr=base_attr,
                        exclusive=expr.func.attr == "write",
                    )
        if isinstance(expr, ast.Name) and expr.id in fn.local_locks:
            kind = fn.local_locks[expr.id]
            if kind in _EXCLUSIVE_KINDS:
                return LockRegion(
                    node=node,
                    item_index=index,
                    key=f"{fn.name}.{expr.id}",
                    kind=kind,
                    attr=expr.id,
                    exclusive=True,
                )
        return None

    def _resolve_call_target(
        self, fn: FunctionInfo, call: ast.Call
    ) -> str | None:
        """Project-function qualname a call resolves to, or None."""
        ctx = fn.module
        func = call.func
        cls = fn.class_info
        if isinstance(func, ast.Attribute):
            base_attr = _self_attr(func.value)
            if base_attr is not None and cls is not None:
                # self.attr.method() through a constructor-derived type.
                target_cls = self.classes.get(cls.attr_types.get(base_attr, ""))
                if target_cls is not None:
                    method = target_cls.methods.get(func.attr)
                    if method is not None:
                        return method.qualname
                return None
            self_method = _self_attr(func)
            if self_method is not None and cls is not None:
                method = cls.methods.get(self_method)
                if method is not None:
                    return method.qualname
                return None
        resolved = ctx.resolve(func)
        if resolved is None:
            return None
        if resolved in self.functions:
            return resolved
        local_fns = self._local_functions.get(ctx.path, {})
        if resolved in local_fns:
            return local_fns[resolved]
        # A constructor call counts as calling the class's __init__.
        target_class = self._resolve_class(ctx, func)
        if target_class is not None:
            init = self.classes[target_class].methods.get("__init__")
            if init is not None:
                return init.qualname
        # ``Class.method`` style, or a function re-imported under another
        # package path: match by trailing segments.
        if "." in resolved:
            tail = resolved.split(".")[-1]
            candidates = [
                qn
                for qn in self.functions
                if qn.endswith(f".{tail}") and resolved.endswith(tail)
                and qn.endswith(resolved.replace(".", ".", 1).split(".", 1)[-1])
            ]
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _blocking_label(
        self, ctx: ModuleContext, call: ast.Call, dotted: str | None
    ) -> str | None:
        resolved = ctx.resolve(call.func)
        if resolved is not None and resolved in BLOCKING_CALLS:
            return resolved
        if dotted is not None:
            for suffix in BLOCKING_SUFFIXES:
                if dotted.endswith(suffix):
                    return dotted
        return None

    # -- derived facts --------------------------------------------------------

    def held_at(self, fn: FunctionInfo, node: ast.AST) -> list[HeldLock]:
        """Locks held at ``node`` inside (the fold of) ``fn``.

        Lexical ``with`` regions contribute exclusive/shared entries; a
        multi-item ``with`` holds items ``0..k-1`` while item ``k``'s
        context expression evaluates.  ``requires-lock`` annotations on the
        enclosing defs contribute ``unknown``-mode entries (the annotation
        does not say how the caller holds a shared/exclusive lock).
        """
        ctx = fn.module
        held: list[HeldLock] = []
        current: ast.AST = node
        parent = ctx.parents.get(current)
        while parent is not None:
            if isinstance(parent, ast.With):
                if isinstance(current, ast.withitem):
                    active = parent.items[: parent.items.index(current)]
                else:
                    active = parent.items
                for item in active:
                    region = fn.regions_by_item.get(id(item))
                    if region is not None:
                        held.append(
                            HeldLock(
                                key=region.key,
                                mode="exclusive"
                                if region.exclusive
                                else "shared",
                                region=region,
                            )
                        )
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for key in fn.requires_by_def.get(id(parent), ()):
                    held.append(HeldLock(key=key, mode="unknown"))
                if parent is fn.node:
                    break
            current, parent = parent, ctx.parents.get(parent)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for key in fn.requires_by_def.get(id(node), ()):
                held.append(HeldLock(key=key, mode="unknown"))
        return held

    def locks_acquired(self, qualname: str) -> frozenset[str]:
        """Every lock key ``qualname`` may acquire, transitively."""
        memo = self._locks_memo.get(qualname)
        if memo is not None:
            return memo
        if qualname in self._locks_visiting:
            return frozenset()
        fn = self.functions.get(qualname)
        if fn is None:
            return frozenset()
        self._locks_visiting.add(qualname)
        try:
            acquired = {region.key for region in fn.regions}
            for _call, target, _dotted in fn.calls:
                if target is not None:
                    acquired.update(self.locks_acquired(target))
        finally:
            self._locks_visiting.discard(qualname)
        result = frozenset(acquired)
        self._locks_memo[qualname] = result
        return result

    def is_blocking(self, qualname: str) -> bool:
        """True when ``qualname`` may block, directly or transitively."""
        memo = self._blocking_memo.get(qualname)
        if memo is not None:
            return memo
        if qualname in self._blocking_visiting:
            return False
        fn = self.functions.get(qualname)
        if fn is None:
            return False
        self._blocking_visiting.add(qualname)
        try:
            verdict = bool(fn.blocking_calls)
            if not verdict:
                for _call, target, _dotted in fn.calls:
                    if target is not None and self.is_blocking(target):
                        verdict = True
                        break
        finally:
            self._blocking_visiting.discard(qualname)
        self._blocking_memo[qualname] = verdict
        return verdict

    def resolve_site_argument(
        self, fn_module: ModuleContext, arg: ast.expr
    ) -> str | None:
        """Literal value of a fault-site argument, through constants."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        resolved = fn_module.resolve(arg)
        if resolved is None:
            return None
        local = self._local_constants.get(fn_module.path, {})
        if resolved in local:
            return local[resolved]
        return self.constants.get(resolved)

    def diagnostic(
        self,
        module: ModuleContext,
        node: ast.AST,
        checker_id: str,
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        return module.diagnostic(node, checker_id, message, severity=severity)


class ProjectChecker(abc.ABC):
    """Base class for whole-program checkers (REP7xx).

    Mirrors :class:`~repro.analysis.checkers.base.Checker` but receives the
    cross-linked :class:`ProjectContext` instead of one module.
    """

    #: Stable identifier used in reports and suppression comments.
    id: str
    #: Short kebab-case name shown by ``--list-checkers``.
    name: str
    #: One-line description of the invariant being enforced.
    description: str
    #: Default severity for this checker's diagnostics.
    severity: Severity = Severity.ERROR

    @abc.abstractmethod
    def check(self, project: ProjectContext) -> Iterable[Diagnostic]:
        """Yield diagnostics for the whole project."""


AnyChecker = Checker | ProjectChecker
