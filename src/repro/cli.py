"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro table1 --scale 0.2
    python -m repro table2 --scale 0.2 --samples 64 --max-nodes 100
    python -m repro fig6 --settings Digg-S Slashdot-W --k 30
    python -m repro sphere --setting NetHEPT-W --node 5
    python -m repro sphere --setting NetHEPT-W --all --out spheres.npz --resume
    python -m repro index build --setting NetHEPT-W --samples 64 --out idx/
    python -m repro index build --setting NetHEPT-W --samples 256 --out idx/ \\
        --batch-size 64 --resume
    python -m repro index info idx/ --verify full
    python -m repro index verify idx/ --json
    python -m repro index append idx/ --samples 64
    python -m repro index query idx/ --node 5 --sphere --infmax 10
    python -m repro index query idx/ --node 5 --sphere --json
    python -m repro serve idx/ --spheres spheres.npz --port 8314
    python -m repro serve idx/ --jobs --port 8314
    python -m repro jobs submit --model celfpp --k 10 --wait
    python -m repro jobs status j000000
    python -m repro data fetch epinions --offline
    python -m repro data ingest epinions --assignment wc
    python -m repro data info epinions-W
    python -m repro data verify epinions-W --full
    python -m repro index build --dataset epinions-W --samples 64 --out idx/
    python -m repro list-settings

Every subcommand prints the same rows/series the paper reports; see
``python -m repro --help`` for the full surface.

Operational errors — a missing store path, a truncated or corrupt archive,
a checkpoint that belongs to a different index, a failed download or a
malformed edge-list file — exit with code 2 and a one-line message on
stderr instead of a traceback (the
:class:`~repro.store.errors.StoreError` and
:class:`~repro.data.errors.DataError` hierarchies plus
``FileNotFoundError``).  Genuine bugs still traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.datasets.registry import EXTENSION_SETTINGS, SETTING_NAMES
from repro.experiments.config import ExperimentConfig

#: All settings the CLI accepts (the paper's 12 + the -T extensions).
CLI_SETTINGS = SETTING_NAMES + EXTENSION_SETTINGS


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale,
        num_samples=args.samples,
        num_eval_samples=args.eval_samples,
        k=args.k,
        seed=args.seed,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.2,
                        help="dataset scale multiplier (default 0.2)")
    parser.add_argument("--samples", type=int, default=64,
                        help="sampled worlds per index (default 64)")
    parser.add_argument("--eval-samples", type=int, default=64,
                        help="fresh evaluation worlds (default 64)")
    parser.add_argument("--k", type=int, default=20,
                        help="seed-set size for influence experiments")
    parser.add_argument("--seed", type=int, default=20160626,
                        help="master RNG seed")


def _settings_argument(parser: argparse.ArgumentParser, default=None) -> None:
    parser.add_argument(
        "--settings",
        nargs="+",
        default=default,
        choices=CLI_SETTINGS,
        metavar="SETTING",
        help="subset of the 12 settings (default: harness default)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of 'Spheres of Influence for More "
        "Effective Viral Marketing' (SIGMOD 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, needs_settings in (
        ("table1", False),
        ("fig3", False),
        ("table2", True),
        ("fig4", True),
        ("fig5", True),
        ("fig6", True),
        ("fig7", True),
        ("fig8", True),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_common(p)
        if needs_settings:
            _settings_argument(p)
        if name in ("table2", "fig4", "fig5"):
            p.add_argument("--max-nodes", type=int, default=None,
                           help="subsample this many nodes (default: all)")

    p = sub.add_parser(
        "sphere", help="sphere of influence of one node, or a resumable sweep"
    )
    _add_common(p)
    p.add_argument("--setting", choices=CLI_SETTINGS,
                   help="dataset setting to build an index for")
    p.add_argument("--node", type=int, default=None,
                   help="node whose sphere to compute")
    p.add_argument("--all", action="store_true",
                   help="sweep every node into a sphere store (see --out)")
    p.add_argument("--index", default=None, metavar="PATH",
                   help="saved cascade index to query instead of building "
                        "one from --setting")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="with --all: .npz file to save the sphere store to")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="with --all: journal completed spheres here "
                        "(default: <out>.ckpt)")
    p.add_argument("--checkpoint-every", type=int, default=64,
                   help="with --all: spheres per checkpoint shard (default 64)")
    p.add_argument("--resume", action="store_true",
                   help="with --all: reuse spheres already journaled in "
                        "--checkpoint-dir instead of refusing to overwrite")

    sub.add_parser("list-settings", help="list the 12 dataset settings")

    p = sub.add_parser(
        "index", help="build, inspect, grow and query persistent cascade indexes"
    )
    isub = p.add_subparsers(dest="index_command", required=True)

    ib = isub.add_parser("build", help="sample worlds and save a store directory")
    _add_common(ib)
    ib.add_argument("--setting", choices=CLI_SETTINGS,
                    help="synthetic experiment setting to build from")
    ib.add_argument("--dataset", default=None, metavar="NAME",
                    help="ingested real dataset to build from (see "
                         "'repro data ingest'); exactly one of --setting "
                         "or --dataset is required")
    ib.add_argument("--data-root", default=None, metavar="DIR",
                    help="data root holding ingested datasets "
                         "(default: $REPRO_DATA_DIR or ./data)")
    ib.add_argument("--out", required=True, metavar="PATH",
                    help="store directory to write")
    ib.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the build (0 = all cores)")
    ib.add_argument("--no-reduce", action="store_true",
                    help="skip the transitive reduction of the DAGs")
    ib.add_argument("--force", action="store_true",
                    help="overwrite an existing store at --out")
    ib.add_argument("--batch-size", type=int, default=0,
                    help="commit the store every N worlds so a crash loses "
                         "at most one batch (0 = one monolithic commit)")
    ib.add_argument("--resume", action="store_true",
                    help="continue a partial store at --out from its "
                         "recorded world count")

    ii = isub.add_parser("info", help="print a saved store's header")
    ii.add_argument("path", metavar="PATH")
    ii.add_argument("--verify", choices=("fast", "full"), default="fast",
                    help="'full' re-hashes every array file (default: fast)")

    iv = isub.add_parser(
        "verify", help="full column-checksum scrub of a saved store"
    )
    iv.add_argument("path", metavar="PATH")
    iv.add_argument("--json", action="store_true",
                    help="print the per-file report as JSON")

    ia = isub.add_parser("append", help="grow a saved store by fresh worlds")
    ia.add_argument("path", metavar="PATH")
    ia.add_argument("--samples", type=int, required=True,
                    help="number of additional worlds to append")
    ia.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the new worlds (0 = all cores)")

    ish = isub.add_parser(
        "shard", help="split a saved store into per-shard stores + routing map"
    )
    ish.add_argument("path", metavar="PATH", help="source store directory")
    ish.add_argument("--shards", type=int, required=True,
                     help="number of shard stores to produce")
    ish.add_argument("--out", required=True, metavar="DIR",
                     help="fleet directory to write (shard-NN.cidx dirs + "
                          "partition.json)")
    ish.add_argument("--by", choices=("node-range", "world-block"),
                     default="node-range",
                     help="partition responsibility by node range (servable "
                          "by the router) or slice worlds into blocks "
                          "(analytics only; default node-range)")
    ish.add_argument("--replicas", type=int, default=1,
                     help="byte-identical replica directories per shard, "
                          "pinned to the same column digests (default 1)")
    ish.add_argument("--force", action="store_true",
                     help="replace an existing fleet directory at --out")

    iq = isub.add_parser("query", help="query a saved store without rebuilding")
    iq.add_argument("path", metavar="PATH")
    iq.add_argument("--node", type=int, default=None,
                    help="node whose cascades/sphere to report")
    iq.add_argument("--world", type=int, default=None,
                    help="with --node: print cascade(node, world) members")
    iq.add_argument("--sphere", action="store_true",
                    help="with --node: compute its sphere of influence")
    iq.add_argument("--infmax", type=int, default=None, metavar="K",
                    help="run InfMax_TC for a size-K seed set")
    iq.add_argument("--json", action="store_true",
                    help="print the query as canonical JSON, byte-identical "
                         "to the serve endpoint's response (one sub-query "
                         "per invocation; --infmax unsupported)")

    p = sub.add_parser(
        "serve", help="HTTP/JSON query service over a saved index"
    )
    p.add_argument("store", metavar="PATH",
                   help="saved cascade index (store directory or .npz)")
    p.add_argument("--spheres", default=None, metavar="PATH",
                   help="precomputed sphere store (.npz); its nodes are "
                        "served without any on-demand computation")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8314,
                   help="bind port, 0 = ephemeral (default 8314)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="LRU result-cache capacity, 0 disables (default 1024)")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="cold computes in flight before requests are shed "
                        "with 429 (default 8)")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="Retry-After hint (seconds) on shed requests")
    p.add_argument("--deadline", type=float, default=0.0,
                   help="per-request deadline in seconds; over-deadline "
                        "requests get 504 (0 = unlimited, the default)")
    p.add_argument("--max-batch", type=int, default=256,
                   help="max nodes per POST /spheres batch; larger batches "
                        "are refused with 413 (default 256)")
    p.add_argument("--breaker-threshold", type=int, default=5,
                   help="consecutive compute failures/timeouts that open "
                        "the circuit breaker (default 5)")
    p.add_argument("--breaker-reset", type=float, default=5.0,
                   help="seconds the breaker stays open before a half-open "
                        "probe (default 5)")
    p.add_argument("--verify", choices=("fast", "full", "lazy"),
                   default="lazy",
                   help="store verification at load: 'lazy' checksums each "
                        "column on first touch and quarantines corruption "
                        "(default), 'full' hashes everything up front, "
                        "'fast' checks sizes only")
    p.add_argument("--shard-id", type=int, default=None,
                   help="this worker's shard id in a fleet (reported in "
                        "/healthz; set by serve-fleet)")
    p.add_argument("--replica-id", type=int, default=None,
                   help="this worker's replica id within its shard "
                        "(reported in /healthz; set by serve-fleet)")
    p.add_argument("--jobs", action="store_true",
                   help="enable the durable seed-selection job service "
                        "(POST /jobs/infmax and the /jobs/* surface)")
    p.add_argument("--jobs-dir", default=None, metavar="DIR",
                   help="directory holding per-job journals "
                        "(default: <store>.jobs)")
    p.add_argument("--jobs-mode", choices=("process", "thread"),
                   default="process",
                   help="run job attempts in supervised worker subprocesses "
                        "(default; survives SIGKILL) or in-process threads")
    p.add_argument("--jobs-max-running", type=int, default=2,
                   help="job attempts running concurrently (default 2)")
    p.add_argument("--jobs-max-queued", type=int, default=16,
                   help="queued jobs before submissions are refused with "
                        "429 (default 16)")
    p.add_argument("--jobs-retries", type=int, default=3,
                   help="retryable worker failures per job before it is "
                        "failed permanently (default 3)")

    p = sub.add_parser(
        "serve-fleet",
        help="sharded serving: worker per shard store + frontend router",
    )
    p.add_argument("fleet", metavar="DIR",
                   help="fleet directory written by 'index shard' "
                        "(partition.json + shard-NN.cidx/)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for router and workers "
                        "(default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8313,
                   help="router bind port, 0 = ephemeral (default 8313); "
                        "workers always bind ephemeral ports")
    p.add_argument("--deadline", type=float, default=0.0,
                   help="per-request deadline in seconds, applied by the "
                        "router and passed to every worker (0 = unlimited)")
    p.add_argument("--retry-after", type=float, default=1.0,
                   help="Retry-After hint (seconds) on down-shard refusals")
    p.add_argument("--max-batch", type=int, default=256,
                   help="max nodes per POST /spheres batch (default 256)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive transport failures that open a shard's "
                        "router-side circuit breaker (default 3)")
    p.add_argument("--breaker-reset", type=float, default=2.0,
                   help="seconds an open shard breaker waits before a "
                        "half-open probe (default 2)")
    p.add_argument("--start-timeout", type=float, default=60.0,
                   help="seconds to wait for every worker to come up "
                        "(default 60)")
    p.add_argument("--hedge-after", type=float, default=0.0,
                   help="seconds to wait on the primary replica before "
                        "hedging a read to a peer (0 = hedging off, the "
                        "default; needs --replicas >= 2 at index time)")
    p.add_argument("--retry-budget", type=float, default=None,
                   help="retry-budget deposit ratio: tokens earned per "
                        "primary attempt, spent 1-per-failover/hedge "
                        "(default 0.2, i.e. ~20%% retry overhead)")
    p.add_argument("--worker-arg", action="append", default=[],
                   metavar="ARG", dest="worker_args",
                   help="extra argument appended to every worker's serve "
                        "command (repeatable), e.g. --worker-arg=--cache-size "
                        "--worker-arg=4096")
    p.add_argument("--jobs-store", default=None, metavar="PATH",
                   help="full (unsharded) index store to run seed-selection "
                        "jobs over; spawns a dedicated jobs worker and "
                        "relays /jobs/* to it")
    p.add_argument("--jobs-dir", default=None, metavar="DIR",
                   help="job journal directory for the jobs worker "
                        "(default: <jobs-store>.jobs)")

    p = sub.add_parser(
        "shard", help="anti-entropy tooling over a fleet directory"
    )
    shsub = p.add_subparsers(dest="shard_command", required=True)
    sc = shsub.add_parser(
        "scrub",
        help="compare every replica's bytes against the partition map's "
             "pinned column digests (exit 2 on divergence)",
    )
    sc.add_argument("fleet", metavar="DIR",
                    help="fleet directory written by 'index shard'")
    sc.add_argument("--json", action="store_true",
                    help="print the scrub report as canonical JSON")
    sr = shsub.add_parser(
        "repair",
        help="rebuild a lost or divergent replica directory from a "
             "healthy peer (verify-then-atomic-rename)",
    )
    sr.add_argument("fleet", metavar="DIR",
                    help="fleet directory written by 'index shard'")
    sr.add_argument("--shard", type=int, required=True,
                    help="shard id of the replica to rebuild")
    sr.add_argument("--replica", type=int, required=True,
                    help="replica id to rebuild")
    sr.add_argument("--from", dest="source_replica", type=int, default=None,
                    metavar="REPLICA",
                    help="peer replica to copy from (default: first "
                         "scrub-clean peer)")
    sr.add_argument("--json", action="store_true",
                    help="print the repair report as canonical JSON")

    p = sub.add_parser(
        "jobs", help="HTTP client for the seed-selection job service"
    )
    p.add_argument("--url", default="http://127.0.0.1:8314", metavar="URL",
                   help="base URL of a serve --jobs server or a jobs-enabled "
                        "fleet router (default http://127.0.0.1:8314)")
    jsub = p.add_subparsers(dest="jobs_command", required=True)
    js = jsub.add_parser("submit", help="submit an infmax job")
    js.add_argument("--model", required=True,
                    choices=("greedy_tc", "celfpp", "ris", "cost_aware",
                             "stability"))
    js.add_argument("--k", type=int, required=True,
                    help="seed-set size to select")
    js.add_argument("--budget", type=float, default=None,
                    help="total cost budget (required by cost_aware)")
    js.add_argument("--deadline", type=float, default=None,
                    help="wall-clock budget in seconds from submission")
    js.add_argument("--num-rr-sets", type=int, default=None,
                    help="RIS sample budget (ris model only)")
    js.add_argument("--rr-seed", type=int, default=None,
                    help="RIS sampling seed (ris model only)")
    js.add_argument("--max-cost", type=float, default=None,
                    help="skip nodes costlier than this (cost_aware only)")
    js.add_argument("--node-cost", action="append", default=[],
                    metavar="NODE=COST", dest="node_costs",
                    help="per-node cost override (repeatable)")
    js.add_argument("--idempotency-key", default=None, metavar="KEY",
                    help="resubmitting the same key + spec returns the "
                         "original job instead of a duplicate")
    js.add_argument("--wait", action="store_true",
                    help="poll until the job reaches a terminal state and "
                         "print the final status")
    js.add_argument("--poll-interval", type=float, default=0.2,
                    help="seconds between --wait polls (default 0.2)")
    for name, help_text in (
        ("status", "print one job's state"),
        ("result", "print a finished job's seed set"),
        ("cancel", "request cooperative cancellation"),
    ):
        jp = jsub.add_parser(name, help=help_text)
        jp.add_argument("job_id", metavar="JOB_ID")
    jsub.add_parser("list", help="list every journalled job")

    p = sub.add_parser(
        "data", help="fetch, ingest and inspect real datasets (SNAP format)"
    )
    dsub = p.add_subparsers(dest="data_command", required=True)

    df = dsub.add_parser(
        "fetch", help="download (or materialise offline) one pinned source"
    )
    df.add_argument("source", metavar="SOURCE",
                    help="source name from the pinned catalogue "
                         "(see 'repro data info')")
    df.add_argument("--offline", action="store_true",
                    help="skip the network and materialise the bundled "
                         "deterministic fixture")
    df.add_argument("--force", action="store_true",
                    help="re-fetch even when a verified cache file exists")
    df.add_argument("--max-bytes", type=int, default=None,
                    help="tighter download size bound than the catalogue's")
    df.add_argument("--timeout", type=float, default=30.0,
                    help="network timeout in seconds (default 30)")
    df.add_argument("--root", default=None, metavar="DIR",
                    help="data root (default: $REPRO_DATA_DIR or ./data)")

    di = dsub.add_parser(
        "ingest", help="stream one source into a checksummed CSR dataset"
    )
    di.add_argument("source", metavar="SOURCE",
                    help="catalogue source name (or provenance label "
                         "when --file is given)")
    di.add_argument("--file", default=None, metavar="PATH",
                    help="ingest this local edge-list file instead of a "
                         "fetched catalogue source")
    di.add_argument("--name", default=None, metavar="NAME",
                    help="dataset name to register (default: "
                         "<source>-<assignment suffix>, e.g. epinions-W)")
    di.add_argument("--assignment",
                    choices=("wc", "fixed", "trivalency", "file"),
                    default="wc",
                    help="probability assignment: weighted cascade "
                         "1/indeg(v) (default), fixed --p, trivalency "
                         "{0.1,0.01,0.001}, or the file's own column")
    di.add_argument("--p", type=float, default=0.1,
                    help="probability for --assignment fixed (default 0.1)")
    di.add_argument("--seed", type=int, default=20160626,
                    help="seed for --assignment trivalency")
    di.add_argument("--on-duplicate", choices=("first", "error", "max"),
                    default="first",
                    help="duplicate-arc policy (default: keep first)")
    di.add_argument("--on-self-loop", choices=("drop", "error"),
                    default="drop",
                    help="self-loop policy (default: drop)")
    di.add_argument("--offline", action="store_true",
                    help="fetch stage uses the bundled fixture, no network")
    di.add_argument("--force", action="store_true",
                    help="replace an already-ingested dataset of this name")
    di.add_argument("--root", default=None, metavar="DIR",
                    help="data root (default: $REPRO_DATA_DIR or ./data)")

    dn = dsub.add_parser(
        "info", help="catalogue + ingested datasets, or one dataset's provenance"
    )
    dn.add_argument("name", nargs="?", default=None, metavar="NAME",
                    help="ingested dataset to describe (default: list "
                         "sources and ingested datasets)")
    dn.add_argument("--json", action="store_true",
                    help="machine-readable output")
    dn.add_argument("--root", default=None, metavar="DIR",
                    help="data root (default: $REPRO_DATA_DIR or ./data)")

    dv = dsub.add_parser(
        "verify", help="checksum-validate one ingested dataset"
    )
    dv.add_argument("name", metavar="NAME")
    dv.add_argument("--full", action="store_true",
                    help="re-hash every array file (default: manifest "
                         "checksum + file sizes)")
    dv.add_argument("--root", default=None, metavar="DIR",
                    help="data root (default: $REPRO_DATA_DIR or ./data)")

    p = sub.add_parser(
        "report", help="assemble EXPERIMENTS.md from results/ artefacts"
    )
    p.add_argument("--results-dir", default="results",
                   help="directory holding the benchmark artefacts")
    p.add_argument("--output", default="EXPERIMENTS.md",
                   help="markdown file to write")
    return parser


def _run_table1(args) -> str:
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(_base_config(args)))


def _run_fig3(args) -> str:
    from repro.experiments.fig3 import format_fig3, run_fig3

    return format_fig3(run_fig3(_base_config(args)))


def _run_table2(args) -> str:
    from repro.experiments.table2 import format_table2, run_table2

    kwargs = {"max_nodes": args.max_nodes}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_table2(run_table2(_base_config(args), **kwargs))


def _run_fig4(args) -> str:
    from repro.experiments.fig4 import format_fig4, run_fig4

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    if args.max_nodes is not None:
        kwargs["max_nodes"] = args.max_nodes
    return format_fig4(run_fig4(_base_config(args), **kwargs))


def _run_fig5(args) -> str:
    from repro.experiments.fig5 import format_fig5, run_fig5

    kwargs = {"max_nodes": args.max_nodes}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig5(run_fig5(_base_config(args), **kwargs))


def _run_fig6(args) -> str:
    from repro.experiments.fig6 import format_fig6, run_fig6

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig6(run_fig6(_base_config(args), **kwargs))


def _run_fig7(args) -> str:
    from repro.experiments.fig7 import format_fig7, run_fig7

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig7(run_fig7(_base_config(args), **kwargs))


def _run_fig8(args) -> str:
    from repro.experiments.fig8 import format_fig8, run_fig8

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig8(run_fig8(_base_config(args), **kwargs))


def _run_sphere(args) -> str:
    from repro.cascades.index import CascadeIndex
    from repro.core.typical_cascade import TypicalCascadeComputer
    from repro.datasets.registry import load_setting

    if args.all == (args.node is not None):
        raise SystemExit("sphere: exactly one of --node or --all is required")
    if args.index is not None:
        index = CascadeIndex.load(args.index)
        source = args.index
    elif args.setting is not None:
        setting = load_setting(args.setting, scale=args.scale)
        index = CascadeIndex.build(setting.graph, args.samples, seed=args.seed)
        source = f"{args.setting} (scale {args.scale})"
    else:
        raise SystemExit("sphere: one of --setting or --index is required")
    computer = TypicalCascadeComputer(index)
    if args.all:
        return _run_sphere_sweep(args, computer, source)
    sphere = computer.compute(args.node)
    lines = [
        f"Sphere of influence of node {args.node} in {source} "
        f"({index.num_worlds} samples):",
        f"  size: {sphere.size}",
        f"  cost (stability): {sphere.cost:.4f}",
        f"  members: {sphere.members.tolist()}",
    ]
    return "\n".join(lines)


def _run_sphere_sweep(args, computer, source: str) -> str:
    """``sphere --all``: a checkpointed sweep over every node."""
    import pathlib

    from repro.runtime.checkpoint import JOURNAL_NAME

    if args.out is None:
        raise SystemExit("sphere --all: --out is required")
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None:
        checkpoint_dir = f"{args.out}.ckpt"
    journal = pathlib.Path(checkpoint_dir) / JOURNAL_NAME
    if journal.exists() and not args.resume:
        raise SystemExit(
            f"sphere --all: {checkpoint_dir} already holds a checkpoint "
            "journal; pass --resume to continue it (or remove the directory)"
        )
    store = computer.compute_store(
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    store.save(args.out)
    return (
        f"swept {len(store)} spheres of {source} "
        f"({computer.index.num_worlds} samples) into {args.out}\n"
        f"  checkpoints: {checkpoint_dir}\n"
        f"  digest: {store.digest()}"
    )


def _run_index(args) -> str:
    handlers = {
        "build": _run_index_build,
        "info": _run_index_info,
        "verify": _run_index_verify,
        "append": _run_index_append,
        "shard": _run_index_shard,
        "query": _run_index_query,
    }
    return handlers[args.index_command](args)


def _format_header(header, path: str) -> str:
    payload = sum(info.num_bytes for info in header.arrays.values())
    entropy = header.seed_entropy
    lines = [
        f"cascade-index store at {path}:",
        f"  format version: {header.format_version}",
        f"  nodes: {header.num_nodes}, edges: {header.num_edges}, "
        f"worlds: {header.num_worlds}",
        f"  transitively reduced: {header.reduced}",
        f"  seed entropy: {entropy if entropy is not None else '(not recorded)'}",
        f"  graph fingerprint: {header.graph_fingerprint}",
        f"  content digest: {header.content_digest}",
        f"  payload: {len(header.arrays)} arrays, {payload} bytes",
    ]
    return "\n".join(lines)


def _run_index_build(args) -> str:
    from repro.datasets.registry import load_setting
    from repro.store import build_index, read_header

    if (args.setting is None) == (args.dataset is None):
        raise SystemExit(
            "index build: exactly one of --setting or --dataset is required"
        )
    if args.dataset is not None:
        try:
            setting = load_setting(args.dataset, data_root=args.data_root)
        except ValueError as exc:
            raise SystemExit(f"index build: {exc}") from exc
    else:
        setting = load_setting(args.setting, scale=args.scale)
    if args.resume or args.batch_size:
        from repro.runtime.build_resume import resumable_index_build

        header = resumable_index_build(
            setting.graph,
            args.samples,
            seed=args.seed,
            out=args.out,
            reduce=not args.no_reduce,
            n_jobs=args.jobs if args.jobs != 0 else None,
            batch_size=args.batch_size,
            resume=args.resume,
            overwrite=args.force,
        )
        return _format_header(header, args.out)
    index = build_index(
        setting.graph,
        args.samples,
        seed=args.seed,
        reduce=not args.no_reduce,
        n_jobs=args.jobs if args.jobs != 0 else None,
    )
    index.save(args.out, format="store", overwrite=args.force)
    return _format_header(read_header(args.out), args.out)


def _run_index_info(args) -> str:
    from repro.store import check_files, read_header

    header = read_header(args.path)
    check_files(args.path, header, verify=args.verify)
    verified = "full sha256" if args.verify == "full" else "file sizes"
    return _format_header(header, args.path) + f"\n  verified: {verified}"


def _run_index_verify(args) -> str:
    """``index verify``: full scrub, exit 0 clean / exit 2 corrupt."""
    import json as json_mod

    from repro.store import scrub_store

    report = scrub_store(args.path)
    if args.json:
        text = json_mod.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        lines = [f"verifying cascade-index store at {report.path}:"]
        for col in report.columns:
            verdict = "ok" if col.ok else f"CORRUPT ({col.problem})"
            lines.append(f"  {col.name}.npy: {col.num_bytes} bytes, {verdict}")
        lines.append(
            f"result: {'clean' if report.ok else 'CORRUPT'} "
            f"({len(report.columns)} columns, "
            f"{len(report.corrupt)} damaged)"
        )
        text = "\n".join(lines)
    if not report.ok:
        print(text)
        raise SystemExit(2)
    return text


def _run_index_append(args) -> str:
    from repro.store import append_worlds

    header = append_worlds(
        args.path,
        args.samples,
        n_jobs=args.jobs if args.jobs != 0 else None,
    )
    return (
        f"appended {args.samples} worlds\n"
        + _format_header(header, args.path)
    )


def _run_index_shard(args) -> str:
    from repro.shard.partition import partition_store

    try:
        partition = partition_store(
            args.path,
            args.out,
            args.shards,
            by=args.by,
            replicas=args.replicas,
            overwrite=args.force,
        )
    except (FileExistsError, ValueError) as exc:
        raise SystemExit(f"index shard: {exc}") from exc
    replica_note = (
        f" x {partition.replicas} replicas" if partition.replicas > 1 else ""
    )
    lines = [
        f"partitioned {args.path} into {partition.num_shards} "
        f"{partition.mode} shards{replica_note} at {args.out}:"
    ]
    unit = "nodes" if partition.mode == "node-range" else "worlds"
    for entry in partition.shards:
        dirs = (
            entry.dir
            if partition.replicas == 1
            else ", ".join(entry.replica_dirs)
        )
        lines.append(
            f"  shard {entry.shard_id}: {dirs} "
            f"{unit} [{entry.lo}, {entry.hi})"
        )
    lines.append(f"  source digest: {partition.source_digest}")
    return "\n".join(lines)


def _run_index_query(args) -> str:
    from repro.cascades.index import CascadeIndex
    from repro.influence.greedy_tc import infmax_tc
    from repro.serve import query as q

    index = CascadeIndex.load(args.path)
    if args.json:
        return _run_index_query_json(args, index)
    lines: list[str] = []
    try:
        if args.node is not None:
            if args.world is not None:
                world = q.cascade_world_payload(index, args.node, args.world)
                lines.append(
                    f"cascade of node {world['node']} in world "
                    f"{world['world']}: size {world['size']}, "
                    f"members {world['members']}"
                )
            else:
                stats = q.cascade_stats_payload(index, args.node)
                lines.append(
                    f"cascade sizes of node {stats['node']} over "
                    f"{stats['num_worlds']} worlds: min {stats['size_min']}, "
                    f"mean {stats['size_mean']:.2f}, max {stats['size_max']}"
                )
            if args.sphere:
                sphere = q.sphere_payload(
                    args.node, _query_computer(index).compute(args.node)
                )
                lines.append(
                    f"sphere of node {sphere['node']}: size {sphere['size']}, "
                    f"cost {sphere['cost']:.4f}, members {sphere['members']}"
                )
    except KeyError as exc:
        raise SystemExit(f"index query: {exc.args[0]}") from exc
    if args.infmax is not None:
        trace, _spheres = infmax_tc(index, args.infmax)
        lines.append(
            f"InfMax_TC seeds (k={args.infmax}): {list(trace.selected)}"
        )
        lines.append(
            f"coverage: {int(trace.coverage[-1])} of {index.num_nodes} nodes"
        )
    if not lines:
        raise SystemExit(
            "index query: nothing to do — pass --node [--world/--sphere] "
            "and/or --infmax K"
        )
    return "\n".join(lines)


def _query_computer(index):
    from repro.core.typical_cascade import TypicalCascadeComputer

    return TypicalCascadeComputer(index)


def _run_index_query_json(args, index) -> str:
    """``index query --json``: one canonical-JSON document per invocation,
    byte-identical to the corresponding serve endpoint's response body."""
    from repro.serve import query as q

    if args.infmax is not None:
        raise SystemExit("index query --json: --infmax is not supported")
    if args.node is None:
        raise SystemExit("index query --json: --node is required")
    if args.sphere and args.world is not None:
        raise SystemExit(
            "index query --json: pass exactly one of --world or --sphere"
        )
    try:
        if args.sphere:
            node = q.require_node(args.node, index.num_nodes)
            payload = q.sphere_payload(node, _query_computer(index).compute(node))
        elif args.world is not None:
            payload = q.cascade_world_payload(index, args.node, args.world)
        else:
            payload = q.cascade_stats_payload(index, args.node)
    except KeyError as exc:
        raise SystemExit(f"index query: {exc.args[0]}") from exc
    return q.canonical_json(payload).decode("ascii")


def _run_serve(args) -> str:
    from repro.serve.app import SphereService, make_server, run_until_signal

    service = SphereService(
        args.store,
        spheres=args.spheres,
        cache_size=args.cache_size,
        max_inflight=args.max_inflight,
        retry_after=args.retry_after,
        deadline=args.deadline,
        max_batch=args.max_batch,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        verify=args.verify,
        shard_id=args.shard_id,
        replica_id=args.replica_id,
    )
    manager = None
    if args.jobs:
        from repro.jobs.manager import JobManager

        manager = JobManager(
            service.index,
            args.jobs_dir if args.jobs_dir else f"{args.store}.jobs",
            index_path=args.store,
            registry=service.registry,
            mode=args.jobs_mode,
            max_running=args.jobs_max_running,
            max_queued=args.jobs_max_queued,
            max_retries=args.jobs_retries,
        )
        service.attach_jobs(manager)
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    spheres_note = (
        f", {len(service.spheres)} precomputed spheres"
        if service.spheres is not None
        else ""
    )
    jobs_note = f", jobs ({args.jobs_mode} mode)" if manager is not None else ""
    # Printed (and flushed) before blocking so wrappers scripting the server
    # can scrape the bound port — --port 0 binds an ephemeral one.
    print(
        f"serving {args.store} ({service.index.num_nodes} nodes, "
        f"{service.index.num_worlds} worlds{spheres_note}{jobs_note}) "
        f"on http://{host}:{port}",
        flush=True,
    )
    try:
        run_until_signal(server)
    finally:
        # Stop accepting/driving job attempts only after the HTTP server
        # has drained, so in-flight submissions settle their journals.
        if manager is not None:
            manager.stop()
    return "serve: drained in-flight requests and shut down cleanly"


def _run_serve_fleet(args) -> str:
    from repro.shard.fleet import run_fleet

    worker_args = ["--deadline", str(args.deadline), *args.worker_args]
    return run_fleet(
        args.fleet,
        host=args.host,
        port=args.port,
        deadline=args.deadline if args.deadline > 0 else None,
        retry_after=args.retry_after,
        max_batch=args.max_batch,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        worker_args=worker_args,
        start_timeout=args.start_timeout,
        jobs_store=args.jobs_store,
        jobs_dir=args.jobs_dir,
        hedge_after=args.hedge_after if args.hedge_after > 0 else None,
        retry_budget_ratio=args.retry_budget,
    )


def _run_shard(args) -> str:
    if args.shard_command == "scrub":
        return _run_shard_scrub(args)
    return _run_shard_repair(args)


def _run_shard_scrub(args) -> str:
    """Offline anti-entropy pass; exits 2 when any replica diverged."""
    from repro.serve.query import canonical_json
    from repro.shard.partition import load_partition
    from repro.shard.repair import scrub_fleet

    partition = load_partition(args.fleet)
    verdicts = scrub_fleet(args.fleet, partition)
    if args.json:
        out = canonical_json(verdicts.to_payload()).decode("ascii")
    else:
        lines = []
        for verdict in verdicts.replicas:
            state = "ok" if verdict.ok else "DIVERGENT"
            lines.append(
                f"shard {verdict.shard_id} replica {verdict.replica} "
                f"({verdict.dir}): {state}"
            )
            lines.extend(f"    {problem}" for problem in verdict.problems)
        if verdicts.ok:
            lines.append("scrub: every replica matches its pinned digests")
        else:
            lines.append(
                f"scrub: {len(verdicts.divergent)} divergent replica(s); "
                "rebuild with `repro shard repair`"
            )
        out = "\n".join(lines)
    if not verdicts.ok:
        print(out)
        raise SystemExit(2)
    return out


def _run_shard_repair(args) -> str:
    from repro.serve.query import canonical_json
    from repro.shard.partition import load_partition
    from repro.shard.repair import RepairError, repair_replica

    partition = load_partition(args.fleet)
    try:
        report = repair_replica(
            args.fleet,
            partition,
            args.shard,
            args.replica,
            source_replica=args.source_replica,
        )
    except RepairError as exc:
        raise SystemExit(f"shard repair: {exc}") from exc
    if args.json:
        return canonical_json(report.to_payload()).decode("ascii")
    return (
        f"rebuilt shard {report.shard_id} replica {report.replica} "
        f"({report.dir}) from replica {report.source_replica}: "
        f"{len(report.columns)} columns verified against pinned digests"
    )


#: Terminal job states (mirror of repro.jobs.manager.TERMINAL_STATES,
#: duplicated here so the pure-stdlib client imports nothing heavy).
_JOBS_TERMINAL = ("done", "cancelled", "failed-permanent")


def _jobs_call(base: str, method: str, path: str, payload=None):
    """One JSON round-trip to the job service; server refusals exit 2."""
    import json as json_mod
    import urllib.error
    import urllib.request

    data = None
    headers = {}
    if payload is not None:
        data = json_mod.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        base + path, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return json_mod.loads(response.read())
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            message = json_mod.loads(body)["error"]["message"]
        except (ValueError, KeyError, TypeError):
            message = body.decode("utf-8", "replace").strip() or str(exc)
        raise SystemExit(f"repro jobs: {exc.code}: {message}") from None
    except urllib.error.URLError as exc:
        raise SystemExit(
            f"repro jobs: cannot reach {base}: {exc.reason}"
        ) from None


def _jobs_submit_payload(args) -> dict:
    payload: dict = {"model": args.model, "k": args.k}
    for name, value in (
        ("budget", args.budget),
        ("deadline", args.deadline),
        ("num_rr_sets", args.num_rr_sets),
        ("rr_seed", args.rr_seed),
        ("max_cost", args.max_cost),
        ("idempotency_key", args.idempotency_key),
    ):
        if value is not None:
            payload[name] = value
    if args.node_costs:
        costs = {}
        for raw in args.node_costs:
            node, sep, cost = raw.partition("=")
            if not sep:
                raise SystemExit(
                    f"repro jobs: --node-cost wants NODE=COST, got {raw!r}"
                )
            try:
                costs[node] = float(cost)
            except ValueError:
                raise SystemExit(
                    f"repro jobs: cost in {raw!r} is not a number"
                ) from None
        payload["node_costs"] = costs
    return payload


def _run_jobs(args) -> str:
    import json as json_mod
    import time as time_mod

    base = args.url.rstrip("/")
    if args.jobs_command == "submit":
        view = _jobs_call(base, "POST", "/jobs/infmax", _jobs_submit_payload(args))
        if args.wait:
            while view.get("state") not in _JOBS_TERMINAL:
                time_mod.sleep(args.poll_interval)
                view = _jobs_call(base, "GET", f"/jobs/{view['id']}")
    elif args.jobs_command == "status":
        view = _jobs_call(base, "GET", f"/jobs/{args.job_id}")
    elif args.jobs_command == "result":
        view = _jobs_call(base, "GET", f"/jobs/{args.job_id}/result")
    elif args.jobs_command == "cancel":
        view = _jobs_call(base, "POST", f"/jobs/{args.job_id}/cancel")
    else:
        view = _jobs_call(base, "GET", "/jobs")
    return json_mod.dumps(view, indent=2, sort_keys=True)


def _run_data(args) -> str:
    handlers = {
        "fetch": _run_data_fetch,
        "ingest": _run_data_ingest,
        "info": _run_data_info,
        "verify": _run_data_verify,
    }
    return handlers[args.data_command](args)


def _run_data_fetch(args) -> str:
    from repro.data import fetch_source

    result = fetch_source(
        args.source,
        root=args.root,
        offline=args.offline,
        force=args.force,
        max_bytes=args.max_bytes,
        timeout=args.timeout,
    )
    origin = "bundled offline fixture" if result.offline_fixture else "download"
    notes = []
    if result.cached:
        notes.append("already cached")
    if result.resumed:
        notes.append("resumed partial download")
    suffix = f" ({', '.join(notes)})" if notes else ""
    return (
        f"fetched {result.source} via {origin}{suffix}\n"
        f"  file: {result.path}\n"
        f"  bytes: {result.num_bytes}\n"
        f"  sha256: {result.sha256}"
    )


def _run_data_ingest(args) -> str:
    from repro.data import ingest

    report = ingest(
        args.source,
        name=args.name,
        file=args.file,
        root=args.root,
        assignment=args.assignment,
        p=args.p,
        seed=args.seed,
        on_duplicate=args.on_duplicate,
        on_self_loop=args.on_self_loop,
        offline=args.offline,
        force=args.force,
    )
    manifest = report.manifest
    parse = manifest["parse"]
    lines = [
        f"ingested {report.name} into {report.directory}",
        f"  source: {manifest['source']['name']} "
        f"({manifest['source']['sha256']})",
        f"  nodes: {manifest['graph']['num_nodes']}, "
        f"arcs: {manifest['graph']['num_edges']} "
        f"(raw {parse['raw_edges']}, duplicates {parse['duplicate_edges']}, "
        f"self-loops dropped {parse['self_loops_dropped']})",
        f"  assignment: {manifest['assignment']['method']}",
        f"  manifest digest: {manifest['manifest_digest']}",
    ]
    if report.resumed_stages:
        lines.append(
            f"  resumed past completed stages: "
            f"{', '.join(report.resumed_stages)}"
        )
    timed = [
        f"{stage.removesuffix('_s')} {seconds:.2f}s"
        for stage, seconds in sorted(report.timings.items())
        if stage != "total_s"
    ]
    lines.append(
        f"  wall clock: {report.timings['total_s']:.2f}s ({', '.join(timed)})"
    )
    return "\n".join(lines)


def _run_data_info(args) -> str:
    import json as json_mod

    from repro.data import describe_dataset, list_ingested, load_sources

    if args.name is not None:
        info = describe_dataset(args.name, args.root)
        if args.json:
            return json_mod.dumps(info, indent=2, sort_keys=True)
        source = info["source"]
        graph = info["graph"]
        parse = info["parse"]
        return "\n".join([
            f"dataset {info['name']}:",
            f"  source: {source['name']} file {source['file']} "
            f"({'offline fixture' if source['offline_fixture'] else 'download'})",
            f"  source sha256: {source['sha256']}",
            f"  nodes: {graph['num_nodes']}, arcs: {graph['num_edges']}",
            f"  parse: {parse['data_lines']} data lines, "
            f"{parse['duplicate_edges']} duplicates "
            f"({parse['on_duplicate']}), "
            f"{parse['self_loops_dropped']} self-loops "
            f"({parse['on_self_loop']})",
            f"  assignment: {info['assignment']}",
            f"  ingested by tool version: {info['tool_version']}",
            f"  manifest digest: {info['manifest_digest']}",
        ])
    sources = load_sources()
    ingested = list_ingested(args.root)
    if args.json:
        return json_mod.dumps(
            {
                "sources": {
                    name: {
                        "url": spec.url,
                        "offline_only": spec.offline_only,
                        "license": spec.license,
                    }
                    for name, spec in sorted(sources.items())
                },
                "ingested": ingested,
            },
            indent=2,
            sort_keys=True,
        )
    lines = ["catalogue sources:"]
    for name, spec in sorted(sources.items()):
        origin = "offline fixture only" if spec.offline_only else spec.url
        lines.append(f"  {name}: {origin}")
    lines.append("ingested datasets:")
    if ingested:
        lines.extend(f"  {name}" for name in ingested)
    else:
        lines.append("  (none — run 'repro data ingest <source>')")
    return "\n".join(lines)


def _run_data_verify(args) -> str:
    from repro.data import dataset_dir, verify_dataset

    directory = dataset_dir(args.name, args.root)
    manifest = verify_dataset(directory, full=args.full)
    depth = "full array re-hash" if args.full else "manifest checksum + sizes"
    return (
        f"dataset {args.name} at {directory}: OK ({depth})\n"
        f"  manifest digest: {manifest['manifest_digest']}"
    )


def _run_report(args) -> str:
    import pathlib

    from repro.experiments.reporting import write_experiments_markdown

    results_dir = pathlib.Path(args.results_dir)
    output = pathlib.Path(args.output)
    write_experiments_markdown(results_dir, output)
    return f"wrote {output} from {results_dir}/"


def _run_list_settings(_args) -> str:
    return "\n".join(
        [*SETTING_NAMES, *(f"{s} (extension)" for s in EXTENSION_SETTINGS)]
    )


_DISPATCH = {
    "table1": _run_table1,
    "fig3": _run_fig3,
    "table2": _run_table2,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "sphere": _run_sphere,
    "index": _run_index,
    "serve": _run_serve,
    "serve-fleet": _run_serve_fleet,
    "shard": _run_shard,
    "jobs": _run_jobs,
    "data": _run_data,
    "list-settings": _run_list_settings,
    "report": _run_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Operational failures (unreadable/corrupt stores, missing paths, stale
    checkpoints — the :class:`~repro.store.errors.StoreError` hierarchy and
    ``FileNotFoundError``) print one line on stderr and return 2; anything
    else is a bug and keeps its traceback.
    """
    from repro.data.errors import DataError
    from repro.store.errors import StoreError

    args = build_parser().parse_args(argv)
    try:
        output = _DISPATCH[args.command](args)
    except (StoreError, DataError, FileNotFoundError) as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
