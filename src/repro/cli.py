"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro table1 --scale 0.2
    python -m repro table2 --scale 0.2 --samples 64 --max-nodes 100
    python -m repro fig6 --settings Digg-S Slashdot-W --k 30
    python -m repro sphere --setting NetHEPT-W --node 5
    python -m repro list-settings

Every subcommand prints the same rows/series the paper reports; see
``python -m repro --help`` for the full surface.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.datasets.registry import EXTENSION_SETTINGS, SETTING_NAMES
from repro.experiments.config import ExperimentConfig

#: All settings the CLI accepts (the paper's 12 + the -T extensions).
CLI_SETTINGS = SETTING_NAMES + EXTENSION_SETTINGS


def _base_config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale,
        num_samples=args.samples,
        num_eval_samples=args.eval_samples,
        k=args.k,
        seed=args.seed,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.2,
                        help="dataset scale multiplier (default 0.2)")
    parser.add_argument("--samples", type=int, default=64,
                        help="sampled worlds per index (default 64)")
    parser.add_argument("--eval-samples", type=int, default=64,
                        help="fresh evaluation worlds (default 64)")
    parser.add_argument("--k", type=int, default=20,
                        help="seed-set size for influence experiments")
    parser.add_argument("--seed", type=int, default=20160626,
                        help="master RNG seed")


def _settings_argument(parser: argparse.ArgumentParser, default=None) -> None:
    parser.add_argument(
        "--settings",
        nargs="+",
        default=default,
        choices=CLI_SETTINGS,
        metavar="SETTING",
        help=f"subset of the 12 settings (default: harness default)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts of 'Spheres of Influence for More "
        "Effective Viral Marketing' (SIGMOD 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, needs_settings in (
        ("table1", False),
        ("fig3", False),
        ("table2", True),
        ("fig4", True),
        ("fig5", True),
        ("fig6", True),
        ("fig7", True),
        ("fig8", True),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_common(p)
        if needs_settings:
            _settings_argument(p)
        if name in ("table2", "fig4", "fig5"):
            p.add_argument("--max-nodes", type=int, default=None,
                           help="subsample this many nodes (default: all)")

    p = sub.add_parser("sphere", help="sphere of influence of one node")
    _add_common(p)
    p.add_argument("--setting", required=True, choices=CLI_SETTINGS)
    p.add_argument("--node", type=int, required=True)

    sub.add_parser("list-settings", help="list the 12 dataset settings")

    p = sub.add_parser(
        "report", help="assemble EXPERIMENTS.md from results/ artefacts"
    )
    p.add_argument("--results-dir", default="results",
                   help="directory holding the benchmark artefacts")
    p.add_argument("--output", default="EXPERIMENTS.md",
                   help="markdown file to write")
    return parser


def _run_table1(args) -> str:
    from repro.experiments.table1 import format_table1, run_table1

    return format_table1(run_table1(_base_config(args)))


def _run_fig3(args) -> str:
    from repro.experiments.fig3 import format_fig3, run_fig3

    return format_fig3(run_fig3(_base_config(args)))


def _run_table2(args) -> str:
    from repro.experiments.table2 import format_table2, run_table2

    kwargs = {"max_nodes": args.max_nodes}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_table2(run_table2(_base_config(args), **kwargs))


def _run_fig4(args) -> str:
    from repro.experiments.fig4 import format_fig4, run_fig4

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    if args.max_nodes:
        kwargs["max_nodes"] = args.max_nodes
    return format_fig4(run_fig4(_base_config(args), **kwargs))


def _run_fig5(args) -> str:
    from repro.experiments.fig5 import format_fig5, run_fig5

    kwargs = {"max_nodes": args.max_nodes}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig5(run_fig5(_base_config(args), **kwargs))


def _run_fig6(args) -> str:
    from repro.experiments.fig6 import format_fig6, run_fig6

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig6(run_fig6(_base_config(args), **kwargs))


def _run_fig7(args) -> str:
    from repro.experiments.fig7 import format_fig7, run_fig7

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig7(run_fig7(_base_config(args), **kwargs))


def _run_fig8(args) -> str:
    from repro.experiments.fig8 import format_fig8, run_fig8

    kwargs = {}
    if args.settings:
        kwargs["settings"] = tuple(args.settings)
    return format_fig8(run_fig8(_base_config(args), **kwargs))


def _run_sphere(args) -> str:
    from repro.cascades.index import CascadeIndex
    from repro.core.typical_cascade import TypicalCascadeComputer
    from repro.datasets.registry import load_setting

    setting = load_setting(args.setting, scale=args.scale)
    index = CascadeIndex.build(setting.graph, args.samples, seed=args.seed)
    sphere = TypicalCascadeComputer(index).compute(args.node)
    lines = [
        f"Sphere of influence of node {args.node} in {args.setting} "
        f"(scale {args.scale}, {args.samples} samples):",
        f"  size: {sphere.size}",
        f"  cost (stability): {sphere.cost:.4f}",
        f"  members: {sphere.members.tolist()}",
    ]
    return "\n".join(lines)


def _run_report(args) -> str:
    import pathlib

    from repro.experiments.reporting import write_experiments_markdown

    results_dir = pathlib.Path(args.results_dir)
    output = pathlib.Path(args.output)
    write_experiments_markdown(results_dir, output)
    return f"wrote {output} from {results_dir}/"


def _run_list_settings(_args) -> str:
    return "\n".join(
        [*SETTING_NAMES, *(f"{s} (extension)" for s in EXTENSION_SETTINGS)]
    )


_DISPATCH = {
    "table1": _run_table1,
    "fig3": _run_fig3,
    "table2": _run_table2,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "sphere": _run_sphere,
    "list-settings": _run_list_settings,
    "report": _run_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    output = _DISPATCH[args.command](args)
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
