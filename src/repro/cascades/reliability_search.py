"""Reliability search over the cascade index (Khan et al., EDBT 2014).

Related work (Section 7): *reliability search* asks for all nodes reachable
from a set of source nodes with probability at least a threshold ``eta``.
With a cascade index already built, the per-node reachability frequencies
across the sampled worlds answer the query directly — another payoff of
having the spheres-of-influence infrastructure precomputed (Section 8's
reuse argument).

The paper's Section 5 (observation 4) is the special case ``eta = 1/2``:
the majority superlevel set, which is monotone in the seed set and a
near-optimal typical cascade.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.utils.validation import check_fraction, check_node


def reachability_frequencies(
    index: CascadeIndex, sources: Sequence[int] | int
) -> np.ndarray:
    """Per-node fraction of indexed worlds in which the node is reached."""
    if isinstance(sources, (int, np.integer)):
        sources = [int(sources)]
    sources = [check_node(s, index.num_nodes, "source") for s in sources]
    if not sources:
        raise ValueError("sources must not be empty")
    counts = np.zeros(index.num_nodes, dtype=np.int64)
    for world in range(index.num_worlds):
        cascade = index.seed_set_cascade(sources, world)
        counts[cascade] += 1
    return counts / index.num_worlds


def reliability_search(
    index: CascadeIndex,
    sources: Sequence[int] | int,
    eta: float,
) -> np.ndarray:
    """All nodes reached from ``sources`` with empirical probability >= eta.

    Returns a sorted int64 array.  The sources themselves always qualify
    (they are reached with probability 1).
    """
    eta = check_fraction(eta, "eta")
    frequencies = reachability_frequencies(index, sources)
    return np.flatnonzero(frequencies >= eta).astype(np.int64)


def majority_reachable_set(
    index: CascadeIndex, sources: Sequence[int] | int
) -> np.ndarray:
    """The eta = 1/2 superlevel set of Section 5's observation 4.

    If the optimal typical cascade of the sources has cost ``eps``, this
    set has cost at most ``eps + O(eps^{3/2})`` (Chierichetti et al.), and
    it is monotone non-decreasing in the source set.
    """
    return reliability_search(index, sources, 0.5)
