"""The cascade index of Section 4 (Algorithm 1).

The index samples ``l`` possible worlds up front and stores, per world:

* the SCC **condensation** DAG (optionally transitively reduced, which is
  the paper's space optimisation);
* the per-component sorted **member lists**;
* the node -> component id **matrix** ``I[v, i]`` (Figure 2 of the paper).

The cascade of any node ``v`` in any world ``i`` is then recovered without
re-sampling: look up ``c = I[v, i]``, walk the condensation DAG from ``c``,
and output the union of the members of the reached components.  The walk is
linear in the number of reached components plus the DAG arcs leaving them,
so extraction cost is proportional to the *output*, not to the graph.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence, Union

import numpy as np

from repro.graph.condensation import Condensation, condense
from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sampling import WorldSampler
from repro.graph.transitive import reduce_condensation
from repro.utils.rng import SeedLike
from repro.utils.validation import check_node, check_positive_int

PathLike = Union[str, os.PathLike]


class CascadeIndex:
    """Pre-sampled possible worlds indexed for O(output) cascade extraction.

    Build with :meth:`build`; query with :meth:`cascade` /
    :meth:`cascades` / :meth:`seed_set_cascade`.
    """

    def __init__(
        self,
        graph: ProbabilisticDigraph,
        condensations: Sequence[Condensation],
        *,
        reduced: bool,
        sampler: WorldSampler | None = None,
        members: Sequence[Sequence[np.ndarray]] | None = None,
        node_comp: np.ndarray | None = None,
    ) -> None:
        """``members`` and ``node_comp`` are trusted pre-built structures
        supplied by the persistent store's memory-mapped loader; when given,
        ``condensations`` is used as-is (it may be a lazy sequence) and
        nothing is materialised eagerly.  Plain construction computes both.
        """
        if not condensations:
            raise ValueError("index needs at least one sampled world")
        self._graph = graph
        self._reduced = reduced
        self._sampler = sampler
        self._store_header = None
        self._store_integrity = None
        if members is None:
            self._conds = list(condensations)
            self._members: Sequence[Sequence[np.ndarray]] = [
                c.members() for c in self._conds
            ]
        else:
            self._conds = condensations
            self._members = members
        if node_comp is None:
            # Figure 2's matrix I[v, i]: component of node v in world i.
            self._node_comp = np.column_stack(
                [c.node_comp for c in self._conds]
            ).astype(np.int32)
        else:
            self._node_comp = node_comp

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: ProbabilisticDigraph,
        num_samples: int,
        seed: SeedLike = None,
        reduce: bool = True,
        *,
        n_jobs: int | None = 1,
    ) -> "CascadeIndex":
        """Algorithm 1: sample worlds, condense, optionally reduce.

        ``n_jobs`` fans the per-world condensation work across a process
        pool (``None``/``0`` = all cores).  Worlds are deterministic in
        ``(seed, world_index)``, so the result is bit-identical to the
        serial build for every worker count.
        """
        check_positive_int(num_samples, "num_samples")
        sampler = WorldSampler(graph, seed)
        if n_jobs == 1:
            condensations = []
            for i in range(num_samples):
                cond = condense(graph, sampler.world_mask(i))
                if reduce:
                    cond = reduce_condensation(cond)
                condensations.append(cond)
        else:
            from repro.store.build import sampled_condensations

            condensations = sampled_condensations(
                graph,
                num_samples,
                entropy=sampler.seed_entropy,
                reduce=reduce,
                n_jobs=n_jobs,
            )
        return cls(graph, condensations, reduced=reduce, sampler=sampler)

    def extend(self, additional_samples: int) -> None:
        """Append freshly sampled worlds to the index in place.

        The sampler is deterministic in ``(seed, world_index)``, so an
        index built with ``l`` samples and then extended by ``l'`` is
        identical to one built with ``l + l'`` samples directly — the
        sample-size ablation relies on this.  Only available on indexes
        constructed via :meth:`build` (loaded indexes do not retain their
        sampler seed).
        """
        check_positive_int(additional_samples, "additional_samples")
        if self._sampler is None:
            raise RuntimeError(
                "this index was not built in-process; rebuild with "
                "CascadeIndex.build to get an extendable index"
            )
        start = self.num_worlds
        for i in range(start, start + additional_samples):
            cond = condense(self._graph, self._sampler.world_mask(i))
            if self._reduced:
                cond = reduce_condensation(cond)
            self._conds.append(cond)
            self._members.append(cond.members())
        self._node_comp = np.column_stack(
            [self._node_comp, *[c.node_comp for c in self._conds[start:]]]
        ).astype(np.int32)

    # -- accessors ----------------------------------------------------------

    @property
    def graph(self) -> ProbabilisticDigraph:
        return self._graph

    @property
    def num_worlds(self) -> int:
        return len(self._conds)

    @property
    def num_nodes(self) -> int:
        return self._graph.num_nodes

    @property
    def reduced(self) -> bool:
        return self._reduced

    @property
    def component_matrix(self) -> np.ndarray:
        """Figure 2's ``I[v, i]`` matrix, shape ``(n, l)`` (do not mutate)."""
        return self._node_comp

    @property
    def seed_entropy(self):
        """Entropy of the sampler's seed sequence, or ``None`` when the
        index was not built in-process (it fully determines every world;
        the persistent store records it to keep appends deterministic)."""
        return self._sampler.seed_entropy if self._sampler is not None else None

    @property
    def store_header(self):
        """Parsed :class:`~repro.store.header.IndexStoreHeader` when this
        index was opened from a persistent store, else ``None``."""
        return self._store_header

    @property
    def store_integrity(self):
        """The :class:`~repro.store.integrity.ColumnIntegrity` guard when
        this index was opened with ``verify="lazy"``, else ``None``.  Its
        quarantine set is what the serving layer reports in ``/healthz``."""
        return self._store_integrity

    def condensation(self, world: int) -> Condensation:
        """The stored SCC condensation of world ``world``."""
        self._check_world(world)
        return self._conds[world]

    def world_members(self, world: int) -> Sequence[np.ndarray]:
        """Per-component sorted member lists of world ``world``."""
        self._check_world(world)
        return self._members[world]

    def component_of(self, node: int, world: int) -> int:
        """The matrix lookup I[v, i] of Figure 2."""
        node = check_node(node, self.num_nodes)
        self._check_world(world)
        return int(self._node_comp[node, world])

    def _check_world(self, world: int) -> None:
        if not 0 <= world < self.num_worlds:
            raise ValueError(
                f"world {world} out of range (index holds {self.num_worlds})"
            )

    # -- cascade extraction ---------------------------------------------------

    def _expand_components(self, world: int, start_comps: Iterable[int]) -> np.ndarray:
        """Union of members of all components reachable from ``start_comps``."""
        cond = self._conds[world]
        members = self._members[world]
        indptr, targets = cond.indptr, cond.targets
        visited: set[int] = set()
        frontier: list[int] = []
        for c in start_comps:
            c = int(c)
            if c not in visited:
                visited.add(c)
                frontier.append(c)
        collected: list[np.ndarray] = []
        while frontier:
            c = frontier.pop()
            collected.append(members[c])
            for d in targets[indptr[c] : indptr[c + 1]]:
                d = int(d)
                if d not in visited:
                    visited.add(d)
                    frontier.append(d)
        return np.sort(np.concatenate(collected))

    def cascade(self, node: int, world: int) -> np.ndarray:
        """Sampled cascade of ``node`` in ``world`` (sorted int64 node ids).

        The node itself is always a member (it trivially infects itself).
        """
        node = check_node(node, self.num_nodes)
        self._check_world(world)
        comp = int(self._node_comp[node, world])
        return self._expand_components(world, (comp,))

    def cascades(self, node: int) -> list[np.ndarray]:
        """All ``l`` sampled cascades of ``node`` — Algorithm 2's inner loop."""
        node = check_node(node, self.num_nodes)
        comps = self._node_comp[node]
        return [
            self._expand_components(world, (int(comps[world]),))
            for world in range(self.num_worlds)
        ]

    def seed_set_cascade(self, seeds: Sequence[int], world: int) -> np.ndarray:
        """Cascade of a whole seed set in one world (union semantics)."""
        self._check_world(world)
        if len(seeds) == 0:
            raise ValueError("seed set must not be empty")
        comps = {
            int(self._node_comp[check_node(s, self.num_nodes, "seed"), world])
            for s in seeds
        }
        return self._expand_components(world, comps)

    def seed_set_cascades(self, seeds: Sequence[int]) -> list[np.ndarray]:
        """All ``l`` sampled cascades of a seed set."""
        return [self.seed_set_cascade(seeds, w) for w in range(self.num_worlds)]

    def cascade_size(self, node: int, world: int) -> int:
        """|cascade(node, world)| without materialising the node ids."""
        node = check_node(node, self.num_nodes)
        self._check_world(world)
        cond = self._conds[world]
        comp = int(self._node_comp[node, world])
        reached = cond.reachable_components(comp)
        return int(cond.comp_sizes[reached].sum())

    def all_cascade_sizes(self, max_closure_components: int = 8192) -> np.ndarray:
        """``(n, l)`` matrix of |cascade(v, i)| for every node and world.

        Per world, a dense boolean reachability closure over *components* is
        built in one ascending-id pass (component ids are a reverse
        topological order), then node sizes follow from a matrix-vector
        product with the component sizes.  Worlds whose condensation exceeds
        ``max_closure_components`` fall back to per-node BFS.

        This matrix is the common input of Table 2's statistics and the
        first iteration of the greedy spread maximiser (sigma({v}) for all
        v is its row mean).
        """
        n = self.num_nodes
        sizes = np.zeros((n, self.num_worlds), dtype=np.int64)
        for world, cond in enumerate(self._conds):
            k = cond.num_components
            if k <= max_closure_components:
                closure = np.zeros((k, k), dtype=bool)
                indptr, targets = cond.indptr, cond.targets
                for c in range(k):
                    row = closure[c]
                    for d in targets[indptr[c] : indptr[c + 1]]:
                        np.logical_or(row, closure[int(d)], out=row)
                    row[c] = True
                comp_reach_size = closure @ cond.comp_sizes
                sizes[:, world] = comp_reach_size[cond.node_comp]
            else:
                reach_size = np.empty(k, dtype=np.int64)
                for c in range(k):
                    reached = cond.reachable_components(c)
                    reach_size[c] = int(cond.comp_sizes[reached].sum())
                sizes[:, world] = reach_size[cond.node_comp]
        return sizes

    # -- statistics -----------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Size statistics of the stored structures (index ablation)."""
        comp_counts = np.array([c.num_components for c in self._conds])
        dag_edges = np.array([c.num_edges for c in self._conds])
        return {
            "num_worlds": float(self.num_worlds),
            "num_nodes": float(self.num_nodes),
            "avg_components": float(comp_counts.mean()),
            "avg_dag_edges": float(dag_edges.mean()),
            "total_dag_edges": float(dag_edges.sum()),
            "matrix_cells": float(self._node_comp.size),
        }

    # -- serialisation ----------------------------------------------------------

    def save(self, path: PathLike, *, format: str | None = None, overwrite: bool = False) -> None:
        """Persist the index.

        Two formats are supported and picked by ``format`` (or, when
        ``None``, by the path: a ``.npz`` suffix selects the legacy
        archive, anything else the store directory):

        * ``"store"`` — the versioned columnar directory of
          :mod:`repro.store`: checksummed header, memory-mapped zero-copy
          :meth:`load`, :func:`~repro.store.append.append_worlds` support.
          Preferred for anything that will be reloaded.
        * ``"npz"`` — a single compressed archive (topology + per-world
          DAGs); loading re-derives members and sizes in memory.
        """
        if format is None:
            format = "npz" if str(os.fspath(path)).endswith(".npz") else "store"
        if format == "store":
            from repro.store.format import write_index

            write_index(self, path, overwrite=overwrite)
            return
        if format != "npz":
            raise ValueError(f"format must be 'store' or 'npz', got {format!r}")
        self._save_npz(path)

    def _save_npz(self, path: PathLike) -> None:
        arrays: dict[str, np.ndarray] = {
            "graph_indptr": self._graph.indptr,
            "graph_targets": self._graph.targets,
            "graph_probs": self._graph.probs,
            "node_comp": self._node_comp,
            "reduced": np.array([1 if self._reduced else 0], dtype=np.int8),
        }
        for i, cond in enumerate(self._conds):
            arrays[f"w{i}_indptr"] = cond.indptr
            arrays[f"w{i}_targets"] = cond.targets
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: PathLike, *, verify: str = "fast") -> "CascadeIndex":
        """Inverse of :meth:`save` for both formats.

        A store directory is opened zero-copy via ``numpy`` memmaps (see
        :func:`repro.store.read_index`; ``verify`` selects ``"fast"`` size
        checks, ``"full"`` SHA-256 validation, or ``"lazy"`` first-touch
        per-column verification).  A ``.npz`` archive is decompressed
        fully into memory.

        Every flavour of unreadable archive — truncated zip, garbage bytes,
        missing arrays, corrupt compressed members — raises
        :class:`~repro.store.errors.StoreFormatError` (a ``ValueError``);
        a missing path stays ``FileNotFoundError``.
        """
        if os.path.isdir(path):
            from repro.store.format import read_index

            return read_index(path, verify=verify)
        import zipfile
        import zlib

        from repro.store.errors import StoreFormatError

        try:
            with np.load(path) as data:
                try:
                    n = int(data["graph_indptr"].shape[0]) - 1
                    graph = ProbabilisticDigraph._from_csr_unchecked(
                        n,
                        data["graph_indptr"],
                        data["graph_targets"],
                        data["graph_probs"],
                    )
                    node_comp = data["node_comp"]
                    reduced = bool(int(data["reduced"][0]))
                    conds = []
                    num_worlds = node_comp.shape[1]
                    for i in range(num_worlds):
                        comp = node_comp[:, i].astype(np.int64)
                        num_components = int(comp.max()) + 1 if comp.size else 0
                        comp_sizes = np.bincount(
                            comp, minlength=num_components
                        ).astype(np.int64)
                        conds.append(
                            Condensation(
                                node_comp=comp,
                                num_components=num_components,
                                indptr=data[f"w{i}_indptr"],
                                targets=data[f"w{i}_targets"],
                                comp_sizes=comp_sizes,
                            )
                        )
                except KeyError as exc:
                    raise StoreFormatError(
                        f"{os.fspath(path)} is not a complete cascade-index "
                        f"archive: missing array — {exc.args[0]}"
                    ) from exc
        except FileNotFoundError:
            raise
        except StoreFormatError:
            raise
        except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
            raise StoreFormatError(
                f"{os.fspath(path)} is not a readable cascade-index archive: {exc}"
            ) from exc
        return cls(graph, conds, reduced=reduced)
