"""Reliability oracles over probabilistic graphs.

*s-t reliability* — the probability that ``t`` is reachable from ``s`` — is
the #P-hard problem Theorem 1 of the paper reduces from.  We provide:

* :func:`exact_reliability` — exact by possible-world enumeration (tiny
  graphs only; exponential in |E|);
* :func:`monte_carlo_reliability` — the standard unbiased sampler;
* :func:`exact_cascade_distribution` — the full distribution over cascades
  from a source, used to validate Example 1 of the paper and the exact
  expected-cost oracle.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.reachability import reachable_mask, reachable_set
from repro.graph.sampling import enumerate_worlds, sample_world
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_node, check_positive_int


def exact_reliability(
    graph: ProbabilisticDigraph, source: int, target: int, max_edges: int = 20
) -> float:
    """P[target reachable from source] by full world enumeration."""
    source = check_node(source, graph.num_nodes, "source")
    target = check_node(target, graph.num_nodes, "target")
    total = 0.0
    for mask, prob in enumerate_worlds(graph, max_edges=max_edges):
        if prob <= 0.0:  # skip zero-probability worlds
            continue
        if reachable_mask(graph, source, mask)[target]:
            total += prob
    return total


def monte_carlo_reliability(
    graph: ProbabilisticDigraph,
    source: int,
    target: int,
    num_samples: int,
    seed: SeedLike = None,
) -> float:
    """Unbiased MC estimate of s-t reliability."""
    source = check_node(source, graph.num_nodes, "source")
    target = check_node(target, graph.num_nodes, "target")
    check_positive_int(num_samples, "num_samples")
    rng = derive_rng(seed)
    hits = 0
    for _ in range(num_samples):
        mask = sample_world(graph, rng)
        if reachable_mask(graph, source, mask)[target]:
            hits += 1
    return hits / num_samples


def exact_cascade_distribution(
    graph: ProbabilisticDigraph,
    sources: Iterable[int] | int,
    max_edges: int = 20,
) -> dict[frozenset[int], float]:
    """Exact distribution over cascades from ``sources``.

    Returns a map cascade-set -> probability; probabilities sum to 1.  This
    is the distribution Example 1 of the paper computes by hand for the
    Figure 1 graph.
    """
    if isinstance(sources, (int, np.integer)):
        sources = [int(sources)]
    sources = [check_node(s, graph.num_nodes, "source") for s in sources]
    dist: dict[frozenset[int], float] = defaultdict(float)
    for mask, prob in enumerate_worlds(graph, max_edges=max_edges):
        if prob <= 0.0:  # skip zero-probability worlds
            continue
        dist[reachable_set(graph, sources, mask)] += prob
    return dict(dist)


def reachability_probabilities(
    graph: ProbabilisticDigraph,
    sources: Iterable[int] | int,
    num_samples: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Per-node MC probability of being reached from ``sources``.

    Element ``v`` estimates P[v in cascade(sources)].  The paper's
    observation 4 (Section 5) concerns the 1/2-threshold superlevel set of
    exactly this vector.
    """
    if isinstance(sources, (int, np.integer)):
        sources = [int(sources)]
    sources = [check_node(s, graph.num_nodes, "source") for s in sources]
    check_positive_int(num_samples, "num_samples")
    rng = derive_rng(seed)
    counts = np.zeros(graph.num_nodes, dtype=np.int64)
    for _ in range(num_samples):
        mask = sample_world(graph, rng)
        counts += reachable_mask(graph, sources, mask)
    return counts / num_samples
