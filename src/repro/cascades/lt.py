"""Linear Threshold (LT) propagation model (extension).

Not used by the paper's evaluation, but implemented so the influence layer
generalises across the two classic Kempe-et-al. models and so the spread
harness can be exercised under a second submodular model.

Semantics: each node ``v`` draws a threshold ``theta_v ~ U(0, 1]``; ``v``
activates when the sum of incoming arc weights from active neighbours
reaches ``theta_v``.  Arc weights are the graph's probabilities, normalised
per target so that incoming weights sum to at most 1 (Kempe et al.'s
requirement).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_node


def normalized_lt_weights(graph: ProbabilisticDigraph) -> np.ndarray:
    """Arc weights rescaled so each node's *incoming* weights sum to <= 1.

    Aligned with the graph's internal arc order.  Nodes whose incoming
    weights already sum to <= 1 are left untouched.
    """
    targets = np.asarray(graph.targets, dtype=np.int64)
    incoming_sum = np.zeros(graph.num_nodes, dtype=np.float64)
    np.add.at(incoming_sum, targets, graph.probs)
    scale = np.ones(graph.num_nodes, dtype=np.float64)
    over = incoming_sum > 1.0
    scale[over] = 1.0 / incoming_sum[over]
    return graph.probs * scale[targets]


def simulate_lt(
    graph: ProbabilisticDigraph,
    seeds: Iterable[int] | int,
    seed: SeedLike = None,
    weights: np.ndarray | None = None,
) -> frozenset[int]:
    """One LT cascade from ``seeds``; returns the final active set."""
    if isinstance(seeds, (int, np.integer)):
        seeds = [int(seeds)]
    seeds = [check_node(s, graph.num_nodes, "seed") for s in seeds]
    if not seeds:
        raise ValueError("seed set must not be empty")
    if weights is None:
        weights = normalized_lt_weights(graph)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != graph.probs.shape:
        raise ValueError(
            f"weights must have shape {graph.probs.shape}, got {weights.shape}"
        )

    rng = derive_rng(seed)
    n = graph.num_nodes
    thresholds = rng.random(n)
    # U(0,1] rather than [0,1): a zero threshold would auto-activate nodes.
    thresholds[thresholds <= 0.0] = 1.0

    active = np.zeros(n, dtype=bool)
    pressure = np.zeros(n, dtype=np.float64)  # active incoming weight so far
    frontier: list[int] = []
    for s in seeds:
        if not active[s]:
            active[s] = True
            frontier.append(s)

    indptr = graph.indptr
    targets = graph.targets
    while frontier:
        newly_active: list[int] = []
        for u in frontier:
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            for k in range(lo, hi):
                v = int(targets[k])
                if active[v]:
                    continue
                pressure[v] += weights[k]
                if pressure[v] >= thresholds[v]:
                    active[v] = True
                    newly_active.append(v)
        frontier = newly_active
    return frozenset(int(v) for v in np.flatnonzero(active))


def expected_spread_lt(
    graph: ProbabilisticDigraph,
    seeds: Iterable[int],
    count: int,
    seed: SeedLike = None,
) -> float:
    """MC estimate of the LT expected spread (extension harness)."""
    rng = derive_rng(seed)
    weights = normalized_lt_weights(graph)
    seeds = list(seeds)
    sizes = [len(simulate_lt(graph, seeds, rng, weights)) for _ in range(count)]
    return float(np.mean(sizes))
