"""Cascade machinery: IC/LT propagation models, the per-world cascade index
of Section 4 (Algorithm 1), and reliability oracles used by the #P-hardness
cross-checks.
"""

from repro.cascades.ic import simulate_ic, sample_cascade, sample_cascades
from repro.cascades.lt import simulate_lt
from repro.cascades.index import CascadeIndex
from repro.cascades.reliability import (
    exact_reliability,
    monte_carlo_reliability,
    exact_cascade_distribution,
)
from repro.cascades.reliability_search import (
    reliability_search,
    majority_reachable_set,
    reachability_frequencies,
)

__all__ = [
    "reliability_search",
    "majority_reachable_set",
    "reachability_frequencies",
    "simulate_ic",
    "sample_cascade",
    "sample_cascades",
    "simulate_lt",
    "CascadeIndex",
    "exact_reliability",
    "monte_carlo_reliability",
    "exact_cascade_distribution",
]
