"""Distance-constrained reachability in uncertain graphs (Jin et al.,
PVLDB 2011 — reference [23] of the paper).

The query: the probability that ``t`` is reachable from ``s`` through a
directed path of length at most ``d`` hops.  Distance-constrained
reliability generalises s-t reliability (``d = infinity``) and underlies
the k-NN semantics of Potamias et al. [31].

Exact computation is #P-hard like plain reliability, so we provide the
exact enumerator for tiny graphs plus the Monte Carlo estimator, both
built on hop-bounded BFS over world masks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.sampling import enumerate_worlds, sample_world
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_node, check_non_negative_int, check_positive_int


def hop_distances(
    graph: ProbabilisticDigraph,
    source: int,
    edge_mask: np.ndarray | None = None,
    max_hops: int | None = None,
) -> np.ndarray:
    """BFS hop distance from ``source`` to every node in one world.

    Unreachable nodes (or nodes farther than ``max_hops``) get -1.
    """
    source = check_node(source, graph.num_nodes, "source")
    n = graph.num_nodes
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = [source]
    indptr, targets = graph.indptr, graph.targets
    if edge_mask is not None:
        edge_mask = np.asarray(edge_mask, dtype=bool)
        if edge_mask.shape != targets.shape:
            raise ValueError(
                f"edge_mask must have shape {targets.shape}, got {edge_mask.shape}"
            )
    hops = 0
    while frontier and (max_hops is None or hops < max_hops):
        hops += 1
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            out = targets[lo:hi]
            if edge_mask is not None:
                out = out[edge_mask[lo:hi]]
            for v in out:
                v = int(v)
                if dist[v] < 0:
                    dist[v] = hops
                    next_frontier.append(v)
        frontier = next_frontier
    return dist


def exact_distance_reliability(
    graph: ProbabilisticDigraph,
    source: int,
    target: int,
    max_hops: int,
    max_edges: int = 20,
) -> float:
    """P[dist(source -> target) <= max_hops] by full world enumeration."""
    source = check_node(source, graph.num_nodes, "source")
    target = check_node(target, graph.num_nodes, "target")
    check_non_negative_int(max_hops, "max_hops")
    total = 0.0
    for mask, prob in enumerate_worlds(graph, max_edges=max_edges):
        if prob <= 0.0:  # skip zero-probability worlds
            continue
        dist = hop_distances(graph, source, mask, max_hops=max_hops)
        if dist[target] >= 0:
            total += prob
    return total


def monte_carlo_distance_reliability(
    graph: ProbabilisticDigraph,
    source: int,
    target: int,
    max_hops: int,
    num_samples: int,
    seed: SeedLike = None,
) -> float:
    """Unbiased MC estimate of the distance-constrained reliability."""
    source = check_node(source, graph.num_nodes, "source")
    target = check_node(target, graph.num_nodes, "target")
    check_non_negative_int(max_hops, "max_hops")
    check_positive_int(num_samples, "num_samples")
    rng = derive_rng(seed)
    hits = 0
    for _ in range(num_samples):
        mask = sample_world(graph, rng)
        dist = hop_distances(graph, source, mask, max_hops=max_hops)
        if dist[target] >= 0:
            hits += 1
    return hits / num_samples


def distance_reliability_profile(
    graph: ProbabilisticDigraph,
    source: int,
    target: int,
    num_samples: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """P[dist <= d] for every d = 0..n-1, from one set of sampled worlds.

    Monotone non-decreasing in d; the last entry equals the plain
    s-t reliability estimate on the same worlds.
    """
    source = check_node(source, graph.num_nodes, "source")
    target = check_node(target, graph.num_nodes, "target")
    check_positive_int(num_samples, "num_samples")
    rng = derive_rng(seed)
    n = graph.num_nodes
    counts = np.zeros(n, dtype=np.int64)
    for _ in range(num_samples):
        mask = sample_world(graph, rng)
        d = hop_distances(graph, source, mask)[target]
        if d >= 0:
            counts[int(d) :] += 1
    return counts / num_samples
