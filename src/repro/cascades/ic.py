"""Independent Cascade (IC) propagation model.

Two equivalent views of an IC cascade from seed set ``S``:

* **time-stepped simulation** (:func:`simulate_ic`): when a node first
  activates it gets one chance to infect each inactive out-neighbour ``v``
  with probability ``p(u, v)``;
* **live-edge / possible-world view** (:func:`sample_cascade`): sample a
  world by flipping every arc once, then take the reachability set of ``S``.

Kempe et al. prove the two define the same distribution over final active
sets; the test-suite checks this equivalence statistically, and the rest of
the library uses the live-edge view because it composes with the cascade
index.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.graph.reachability import reachable_array, reachable_set
from repro.graph.sampling import sample_world
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_node, check_positive_int


def _normalize_seeds(graph: ProbabilisticDigraph, seeds: Iterable[int] | int) -> list[int]:
    if isinstance(seeds, (int, np.integer)):
        seeds = [int(seeds)]
    result = []
    seen: set[int] = set()
    for s in seeds:
        s = check_node(s, graph.num_nodes, "seed")
        if s not in seen:
            seen.add(s)
            result.append(s)
    if not result:
        raise ValueError("seed set must not be empty")
    return result


def simulate_ic(
    graph: ProbabilisticDigraph,
    seeds: Iterable[int] | int,
    seed: SeedLike = None,
) -> tuple[frozenset[int], list[list[int]]]:
    """Time-stepped IC simulation.

    Returns ``(active_set, rounds)`` where ``rounds[t]`` lists the nodes
    first activated at time ``t`` (``rounds[0]`` is the seed set).
    """
    rng = derive_rng(seed)
    seeds = _normalize_seeds(graph, seeds)
    n = graph.num_nodes
    active = np.zeros(n, dtype=bool)
    for s in seeds:
        active[s] = True
    rounds: list[list[int]] = [list(seeds)]
    frontier = list(seeds)

    while frontier:
        newly_active: list[int] = []
        for u in frontier:
            targets = graph.successors(u)
            if targets.size == 0:
                continue
            probs = graph.successor_probs(u)
            hits = rng.random(targets.size) < probs
            for v in targets[hits]:
                v = int(v)
                if not active[v]:
                    active[v] = True
                    newly_active.append(v)
        if newly_active:
            rounds.append(newly_active)
        frontier = newly_active
    active_set = frozenset(int(v) for v in np.flatnonzero(active))
    return active_set, rounds


def sample_cascade(
    graph: ProbabilisticDigraph,
    seeds: Iterable[int] | int,
    seed: SeedLike = None,
) -> frozenset[int]:
    """One random cascade from ``seeds`` via the live-edge view."""
    seeds = _normalize_seeds(graph, seeds)
    mask = sample_world(graph, seed)
    return reachable_set(graph, seeds, mask)


def sample_cascades(
    graph: ProbabilisticDigraph,
    seeds: Iterable[int] | int,
    count: int,
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """``count`` i.i.d. cascades from ``seeds``, each a sorted int64 array."""
    check_positive_int(count, "count")
    seeds = _normalize_seeds(graph, seeds)
    rng = derive_rng(seed)
    cascades = []
    for _ in range(count):
        mask = sample_world(graph, rng)
        cascades.append(reachable_array(graph, seeds, mask))
    return cascades


def cascade_sizes(
    graph: ProbabilisticDigraph,
    seeds: Iterable[int] | int,
    count: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sizes of ``count`` i.i.d. cascades (used by spread estimation)."""
    return np.array(
        [c.size for c in sample_cascades(graph, seeds, count, seed)], dtype=np.int64
    )


def expected_spread_monte_carlo(
    graph: ProbabilisticDigraph,
    seeds: Sequence[int],
    count: int,
    seed: SeedLike = None,
) -> float:
    """Unbiased MC estimate of the expected spread sigma(S)."""
    return float(cascade_sizes(graph, seeds, count, seed).mean())
