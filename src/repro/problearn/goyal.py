"""Goyal et al. (WSDM 2010) frequentist influence-probability learner.

The simplest ("Bernoulli") model from that paper, which is the one the
SIGMOD'16 paper uses: the probability of the arc ``(u, v)`` is::

    p(u, v) = A_{u2v} / A_u

where ``A_u`` is the number of actions ``u`` performed and ``A_{u2v}`` the
number of actions ``v`` performed *after* ``u`` (both acted on the item and
``v``'s timestamp is strictly later, within an optional time window).

Arcs that never receive credit get probability 0 and are dropped from the
returned graph — they cannot take part in any cascade.  Pass
``min_probability`` to clamp instead of dropping.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.problearn.logs import ActionLog


def learn_goyal(
    graph: ProbabilisticDigraph,
    log: ActionLog,
    time_window: int | None = None,
    min_probability: float | None = None,
) -> ProbabilisticDigraph:
    """Fit per-arc probabilities on ``graph``'s topology from ``log``.

    ``time_window`` limits credit to activations at most that many steps
    after ``u`` (``None`` = unlimited, the model's default).  Returns a new
    graph on the same nodes whose arcs carry the learnt probabilities.
    """
    if time_window is not None and time_window <= 0:
        raise ValueError(f"time_window must be positive, got {time_window}")
    if min_probability is not None and not 0.0 < min_probability <= 1.0:
        raise ValueError(
            f"min_probability must be in (0, 1], got {min_probability}"
        )
    n = graph.num_nodes
    action_counts = log.user_action_counts(n)

    # A_{u2v} accumulated per existing arc, keyed by arc position.
    credit = np.zeros(graph.num_edges, dtype=np.int64)
    indptr, targets = graph.indptr, graph.targets

    for _, episode in log.episodes():
        for u, t_u in episode.items():
            if not 0 <= u < n:
                continue
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            for pos in range(lo, hi):
                v = int(targets[pos])
                t_v = episode.get(v)
                if t_v is None or t_v <= t_u:
                    continue
                if time_window is not None and t_v - t_u > time_window:
                    continue
                credit[pos] += 1

    sources = graph.edge_sources()
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(
            action_counts[sources] > 0,
            credit / np.maximum(action_counts[sources], 1),
            0.0,
        )
    probs = np.minimum(probs, 1.0)

    if min_probability is not None:
        probs = np.maximum(probs, min_probability)
        return graph.with_probabilities(probs)

    keep = probs > 0.0
    return ProbabilisticDigraph.from_arrays(
        n, sources[keep], np.asarray(targets, dtype=np.int64)[keep], probs[keep]
    )
