"""Propagation logs: the (user, item, timestamp) action model.

A log records which user performed an action on which item at which discrete
time — votes on Digg stories, ratings on Flixster movies, URL reshares on
Twitter.  Grouped by item, the log yields *episodes*: the raw material both
probability learners consume.

:func:`generate_action_log` synthesises a log by replaying ground-truth IC
cascades over a graph, which is this reproduction's stand-in for the
unavailable crawls (see DESIGN.md §3): the learners then exercise exactly
the estimation code paths the paper runs on real data.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.cascades.ic import simulate_ic
from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Action:
    """One log record: ``user`` acted on ``item`` at integer ``time``."""

    user: int
    item: int
    time: int


class ActionLog:
    """A propagation log with per-item episode access.

    An *episode* for item ``i`` is the mapping user -> first activation
    time.  Re-activations (the same user acting on the same item again) are
    ignored, keeping the earliest time, which is the convention of both
    learners.
    """

    def __init__(self, actions: Iterable[Action] = ()) -> None:
        self._episodes: dict[int, dict[int, int]] = defaultdict(dict)
        self._num_actions = 0
        for action in actions:
            self.add(action.user, action.item, action.time)

    def add(self, user: int, item: int, time: int) -> None:
        """Record an action (keeps the earliest time per (user, item))."""
        user, item, time = int(user), int(item), int(time)
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        episode = self._episodes[item]
        if user not in episode or time < episode[user]:
            if user not in episode:
                self._num_actions += 1
            episode[user] = time
        # A later duplicate action is dropped entirely.

    @property
    def num_actions(self) -> int:
        """Number of distinct (user, item) activations."""
        return self._num_actions

    @property
    def num_items(self) -> int:
        return len(self._episodes)

    def items(self) -> list[int]:
        """Sorted ids of all items with recorded actions."""
        return sorted(self._episodes)

    def episode(self, item: int) -> dict[int, int]:
        """user -> first activation time for ``item`` (copy)."""
        if item not in self._episodes:
            raise KeyError(f"no actions recorded for item {item}")
        return dict(self._episodes[item])

    def episodes(self) -> Iterator[tuple[int, dict[int, int]]]:
        """Iterate (item, episode) pairs in item order."""
        for item in self.items():
            yield item, dict(self._episodes[item])

    def user_action_counts(self, num_users: int) -> np.ndarray:
        """A_u: number of items each user acted on (Goyal's denominator)."""
        counts = np.zeros(num_users, dtype=np.int64)
        for episode in self._episodes.values():
            for user in episode:
                if 0 <= user < num_users:
                    counts[user] += 1
        return counts

    def __len__(self) -> int:
        return self._num_actions


def generate_action_log(
    graph: ProbabilisticDigraph,
    num_items: int,
    seed: SeedLike = None,
    initial_adopters: int = 1,
) -> ActionLog:
    """Synthesise a log by running one ground-truth IC cascade per item.

    Each item starts from ``initial_adopters`` uniformly random seeds at
    time 0; the time-stepped IC simulation provides the activation
    timestamps.  Items whose cascade never leaves the seeds still appear in
    the log (real logs contain plenty of non-viral items).
    """
    check_positive_int(num_items, "num_items")
    check_positive_int(initial_adopters, "initial_adopters")
    if initial_adopters > graph.num_nodes:
        raise ValueError(
            f"initial_adopters={initial_adopters} exceeds node count {graph.num_nodes}"
        )
    rng = derive_rng(seed)
    log = ActionLog()
    for item in range(num_items):
        seeds = rng.choice(graph.num_nodes, size=initial_adopters, replace=False)
        _, rounds = simulate_ic(graph, [int(s) for s in seeds], rng)
        for time, activated in enumerate(rounds):
            for user in activated:
                log.add(user, item, time)
    return log
