"""Learning and assigning influence probabilities.

The paper evaluates on both *learnt* probabilities (Saito et al.'s EM and
Goyal et al.'s frequentist model, fitted on a propagation log) and
*assigned* probabilities (weighted cascade ``1/indeg`` and fixed 0.1).
This package implements all four, plus the propagation-log data model and a
synthetic log generator that replays ground-truth IC cascades (the
substitution for the Digg/Flixster/Twitter activity crawls — DESIGN.md §3).
"""

from repro.problearn.logs import ActionLog, generate_action_log
from repro.problearn.goyal import learn_goyal
from repro.problearn.saito import learn_saito
from repro.problearn.streaming import StreamingInfluenceLearner
from repro.problearn.assign import (
    assign_weighted_cascade,
    assign_fixed,
    assign_trivalency,
)

__all__ = [
    "ActionLog",
    "generate_action_log",
    "learn_goyal",
    "learn_saito",
    "StreamingInfluenceLearner",
    "assign_weighted_cascade",
    "assign_fixed",
    "assign_trivalency",
]
