"""Saito et al. (KES 2008) EM learner for IC influence probabilities.

The model: each episode is an IC diffusion with discrete time steps; a node
``v`` activated at step ``t + 1`` was infected by at least one in-neighbour
active at step ``t``; an in-neighbour ``u`` active at step ``t`` whose
neighbour ``w`` did *not* activate at ``t + 1`` made a failed attempt.
Maximising the likelihood over the arc probabilities yields the EM update::

    p_uv  <-  ( sum_{s in S+_uv}  p_uv / P_s(v) ) / ( |S+_uv| + |S-_uv| )

where ``S+_uv`` are episodes with a potential ``u -> v`` infection,
``S-_uv`` episodes with a failed attempt, and
``P_s(v) = 1 - prod_{u' in parents_s(v)} (1 - p_u'v)`` the probability that
*some* potential parent succeeded.

The implementation precomputes, per arc, its positive events (grouped so
that sibling arcs into the same activation share ``P_s(v)``) and its
negative count; each EM sweep is then linear in the number of events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.problearn.logs import ActionLog
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class SaitoFit:
    """Result of an EM fit.

    Attributes:
        graph: new graph carrying the learnt probabilities (zero-probability
            arcs dropped).
        probabilities: learnt probability per arc of the *input* graph
            (aligned with its arc order; zeros where an arc had no events).
        iterations: EM sweeps performed.
        log_likelihood: final (partial) data log-likelihood.
    """

    graph: ProbabilisticDigraph
    probabilities: np.ndarray
    iterations: int
    log_likelihood: float


def _collect_events(
    graph: ProbabilisticDigraph, log: ActionLog
) -> tuple[list[np.ndarray], np.ndarray]:
    """Per-activation positive-parent groups and per-arc negative counts.

    Returns ``(groups, negatives)`` where each element of ``groups`` is an
    array of arc positions that are the potential parents of one activation
    event, and ``negatives[pos]`` counts failed attempts of that arc.
    """
    n = graph.num_nodes
    indptr, targets = graph.indptr, graph.targets
    negatives = np.zeros(graph.num_edges, dtype=np.int64)
    groups: list[np.ndarray] = []

    for _, episode in log.episodes():
        # parents[v] = arc positions (u -> v) with t_u == t_v - 1.
        parents: dict[int, list[int]] = {}
        for u, t_u in episode.items():
            if not 0 <= u < n:
                continue
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            for pos in range(lo, hi):
                v = int(targets[pos])
                t_v = episode.get(v)
                if t_v is not None and t_v == t_u + 1:
                    parents.setdefault(v, []).append(pos)
                elif t_v is None or t_v > t_u + 1:
                    # u was active, v did not activate at t_u + 1:
                    # a failed attempt under the Saito model.
                    negatives[pos] += 1
        for arc_positions in parents.values():
            groups.append(np.asarray(arc_positions, dtype=np.int64))
    return groups, negatives


def learn_saito(
    graph: ProbabilisticDigraph,
    log: ActionLog,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    initial_probability: float = 0.5,
) -> SaitoFit:
    """Fit arc probabilities by EM; see the module docstring for the model."""
    check_positive_int(max_iterations, "max_iterations")
    check_probability(initial_probability, "initial_probability")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")

    groups, negatives = _collect_events(graph, log)
    m = graph.num_edges
    positives = np.zeros(m, dtype=np.int64)
    for group in groups:
        positives[group] += 1
    has_events = (positives + negatives) > 0

    p = np.full(m, initial_probability, dtype=np.float64)
    p[~has_events] = 0.0
    p[positives == 0] = 0.0  # no successful attempt ever: MLE is 0

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        responsibility = np.zeros(m, dtype=np.float64)
        for group in groups:
            probs = p[group]
            # P_s(v): probability at least one potential parent succeeded.
            fail_all = float(np.prod(1.0 - probs))
            p_v = 1.0 - fail_all
            if p_v <= 0.0:
                # All parent probabilities are 0 — spread responsibility
                # uniformly so the arcs can recover.
                responsibility[group] += 1.0 / group.size
            else:
                responsibility[group] += probs / p_v
        denom = positives + negatives
        new_p = np.zeros(m, dtype=np.float64)
        active = denom > 0
        new_p[active] = responsibility[active] / denom[active]
        new_p = np.clip(new_p, 0.0, 1.0)
        delta = float(np.max(np.abs(new_p - p))) if m else 0.0
        p = new_p
        if delta < tolerance:
            break

    log_likelihood = _log_likelihood(p, groups, negatives)
    keep = p > 0.0
    sources = graph.edge_sources()
    learnt_graph = ProbabilisticDigraph.from_arrays(
        graph.num_nodes,
        sources[keep],
        np.asarray(graph.targets, dtype=np.int64)[keep],
        p[keep],
    )
    return SaitoFit(learnt_graph, p, iterations, log_likelihood)


def _log_likelihood(
    p: np.ndarray, groups: list[np.ndarray], negatives: np.ndarray
) -> float:
    """Data log-likelihood under the Saito model (monitoring only)."""
    eps = 1e-12
    total = 0.0
    for group in groups:
        p_v = 1.0 - float(np.prod(1.0 - p[group]))
        total += float(np.log(max(p_v, eps)))
    with np.errstate(divide="ignore"):
        log_fail = np.log(np.maximum(1.0 - p, eps))
    total += float(np.sum(negatives * log_fail))
    return total
