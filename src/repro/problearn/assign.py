"""Artificial probability assignment (Section 6.2 of the paper).

* :func:`assign_weighted_cascade` — the WC model of Chen et al.:
  ``p(u, v) = 1 / indeg(v)``.
* :func:`assign_fixed` — constant probability on every arc (the paper uses
  0.1).
* :func:`assign_trivalency` — the TRIVALENCY benchmark (extension): each arc
  uniformly draws from {0.1, 0.01, 0.001}.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_probability


def assign_weighted_cascade(graph: ProbabilisticDigraph) -> ProbabilisticDigraph:
    """WC model: every arc into ``v`` gets probability ``1 / indeg(v)``.

    Every arc's target has in-degree >= 1 (the arc itself), so the
    probabilities are well-defined and lie in (0, 1].
    """
    indeg = graph.in_degrees().astype(np.float64)
    targets = np.asarray(graph.targets, dtype=np.int64)
    probs = 1.0 / indeg[targets]
    return graph.with_probabilities(probs)


def assign_fixed(graph: ProbabilisticDigraph, p: float = 0.1) -> ProbabilisticDigraph:
    """Constant probability ``p`` on every arc."""
    check_probability(p, "p")
    return graph.with_probabilities(np.full(graph.num_edges, p))


def assign_trivalency(
    graph: ProbabilisticDigraph,
    values: tuple[float, ...] = (0.1, 0.01, 0.001),
    seed: SeedLike = None,
) -> ProbabilisticDigraph:
    """TRIVALENCY: each arc draws uniformly from ``values``."""
    if not values:
        raise ValueError("values must not be empty")
    for v in values:
        check_probability(v, "values")
    rng = derive_rng(seed)
    choices = rng.integers(0, len(values), size=graph.num_edges)
    probs = np.asarray(values, dtype=np.float64)[choices]
    return graph.with_probabilities(probs)
