"""Streaming influence-probability learning (after STRIP, Kutzkov et al.,
KDD 2013 — reference [26] of the paper).

STRIP learns Goyal-style frequentist probabilities from a *stream* of
actions under sublinear memory.  This module implements the frequentist
core of that setting:

* :class:`StreamingInfluenceLearner` consumes ``(user, item, time)`` records
  one at a time and maintains, per arc of a known topology, the credit
  counters ``A_u2v`` and per-user ``A_u`` — the exact stream analogue of
  :func:`repro.problearn.goyal.learn_goyal` with a recency window;
* a per-item **sliding activation window** bounds memory: only activations
  of the last ``window`` time steps are retained per item, so memory is
  O(#items-in-flight * window-activity) instead of the full log.

With an unbounded window the learner reproduces the batch Goyal estimates
exactly (tested), which is the correctness anchor the approximation is
measured against.
"""

from __future__ import annotations

from collections import defaultdict, deque

import numpy as np

from repro.graph.digraph import ProbabilisticDigraph
from repro.problearn.logs import ActionLog
from repro.utils.validation import check_positive_int


class StreamingInfluenceLearner:
    """One-pass frequentist learner over an action stream.

    Parameters:
        graph: the social topology whose arcs are being weighted.
        window: how many time steps after ``u``'s action a following action
            by ``v`` still earns credit (and how long activations are kept
            in memory).  ``None`` keeps everything — exact batch Goyal.
    """

    def __init__(
        self, graph: ProbabilisticDigraph, window: int | None = None
    ) -> None:
        if window is not None:
            check_positive_int(window, "window")
        self._graph = graph
        self._window = window
        self._credit = np.zeros(graph.num_edges, dtype=np.int64)
        self._user_actions = np.zeros(graph.num_nodes, dtype=np.int64)
        # Per item: deque of (user, time) still inside the window, plus the
        # set of users already counted for that item (first action only).
        self._recent: dict[int, deque[tuple[int, int]]] = defaultdict(deque)
        self._seen: dict[int, set[int]] = defaultdict(set)
        self._processed = 0

    @property
    def num_processed(self) -> int:
        """How many stream records have been consumed."""
        return self._processed

    def _arc_position(self, u: int, v: int) -> int | None:
        lo, hi = int(self._graph.indptr[u]), int(self._graph.indptr[u + 1])
        row = self._graph.targets[lo:hi]
        i = int(np.searchsorted(row, v))
        if i < len(row) and int(row[i]) == v:
            return lo + i
        return None

    def process(self, user: int, item: int, time: int) -> None:
        """Consume one action record (records must arrive in time order
        per item; duplicates are ignored)."""
        user, item, time = int(user), int(item), int(time)
        if not 0 <= user < self._graph.num_nodes:
            return  # user outside the known topology: no arc can learn
        if user in self._seen[item]:
            return
        self._seen[item].add(user)
        self._processed += 1
        self._user_actions[user] += 1

        recent = self._recent[item]
        # Expire activations that fell out of the window.
        if self._window is not None:
            while recent and time - recent[0][1] > self._window:
                recent.popleft()
        # Credit every windowed predecessor with an arc into `user`.
        for predecessor, t_pred in recent:
            if t_pred >= time:
                continue  # same-step actions carry no direction
            pos = self._arc_position(predecessor, user)
            if pos is not None:
                self._credit[pos] += 1
        recent.append((user, time))

    def process_log(self, log: ActionLog) -> None:
        """Replay a whole :class:`ActionLog` in time order (testing aid)."""
        records = []
        for item, episode in log.episodes():
            for user, time in episode.items():
                records.append((time, item, user))
        records.sort()
        for time, item, user in records:
            self.process(user, item, time)

    def finish_item(self, item: int) -> None:
        """Declare an item's diffusion over, releasing its memory."""
        self._recent.pop(item, None)
        self._seen.pop(item, None)

    def memory_footprint(self) -> int:
        """Number of in-flight (item, activation) records retained."""
        return sum(len(d) for d in self._recent.values()) + sum(
            len(s) for s in self._seen.values()
        )

    def estimates(self, min_probability: float | None = None) -> ProbabilisticDigraph:
        """Current probability estimates as a graph (zero-credit arcs are
        dropped, or clamped to ``min_probability`` when given)."""
        sources = self._graph.edge_sources()
        with np.errstate(divide="ignore", invalid="ignore"):
            probs = np.where(
                self._user_actions[sources] > 0,
                self._credit / np.maximum(self._user_actions[sources], 1),
                0.0,
            )
        probs = np.minimum(probs, 1.0)
        if min_probability is not None:
            probs = np.maximum(probs, min_probability)
            return self._graph.with_probabilities(probs)
        keep = probs > 0.0
        return ProbabilisticDigraph.from_arrays(
            self._graph.num_nodes,
            sources[keep],
            np.asarray(self._graph.targets, dtype=np.int64)[keep],
            probs[keep],
        )
