"""Figure 6 — expected spread of InfMax_std vs InfMax_TC.

The paper's headline result: for each of the 12 settings, both methods
select up to ``k`` seeds using the same sample budget; the expected spread
sigma(S_j) of every prefix is then evaluated on a common fresh set of
worlds.  InfMax_std wins early, the curves cross, and InfMax_TC wins for
large seed sets.

Reproduction note (see EXPERIMENTS.md): the crossover hinges on the
*estimation regime* of InfMax_std.  The paper's implementation [18]
re-simulates cascades independently for every marginal-gain estimate, so
late-stage gains (fractions of a node) drown in Monte Carlo noise while
InfMax_TC's denoised spheres keep discriminating.  This harness therefore
runs the paper-faithful :func:`~repro.influence.greedy_std.infmax_std_mc`
as InfMax_std, and *additionally* reports the modern common-random-numbers
greedy (:func:`~repro.influence.greedy_std.infmax_std`) as
``InfMax_std(CRN)`` — a variance-reduced baseline that postpones the
crossover, which is itself a reproducible finding about *why* the paper's
effect occurs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.datasets.registry import SETTING_NAMES, load_setting
from repro.experiments.config import ExperimentConfig
from repro.influence.greedy_std import infmax_std, infmax_std_mc
from repro.influence.greedy_tc import infmax_tc
from repro.influence.spread import evaluate_spread_curve


@dataclass(frozen=True)
class Fig6Result:
    """Spread curves on one setting.

    Attributes:
        setting: dataset setting name.
        k: number of seeds selected.
        spread_std: sigma(S_j) of the paper-faithful InfMax_std (noisy MC
            estimates), evaluated on shared fresh worlds.
        spread_std_crn: sigma(S_j) of the common-random-numbers greedy.
        spread_tc: sigma(S_j) of InfMax_TC.
        seeds_std / seeds_tc: the selected seed sequences.
        crossover: smallest j from which InfMax_TC stays at or above
            InfMax_std through seed k; None if TC is behind at k.
    """

    setting: str
    k: int
    spread_std: np.ndarray
    spread_std_crn: np.ndarray
    spread_tc: np.ndarray
    seeds_std: tuple[int, ...]
    seeds_tc: tuple[int, ...]
    crossover: int | None

    @property
    def tc_wins_at_k(self) -> bool:
        return float(self.spread_tc[-1]) >= float(self.spread_std[-1])


def _find_crossover(spread_std: np.ndarray, spread_tc: np.ndarray) -> int | None:
    ahead = spread_tc >= spread_std
    if not ahead[-1]:
        return None
    # First index from which TC stays >= std through the end.
    j = len(ahead)
    while j > 0 and ahead[j - 1]:
        j -= 1
    return j + 1  # 1-based seed count


def run_fig6_single(
    setting_name: str,
    config: ExperimentConfig | None = None,
    mc_simulations: int | None = None,
    mc_pool: int | None = None,
) -> Fig6Result:
    """All three methods on one setting, evaluated on shared fresh worlds.

    ``mc_simulations`` / ``mc_pool`` control InfMax_std's noisy estimator
    (defaults: 1.5x and 6x the config's sample budget).
    """
    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    k = min(config.k, graph.num_nodes)
    if mc_simulations is None:
        mc_simulations = int(1.5 * config.num_samples)
    if mc_pool is None:
        mc_pool = 6 * config.num_samples

    # Paper-faithful InfMax_std: independent-noise estimates.
    trace_std = infmax_std_mc(
        graph, k, num_simulations=mc_simulations, seed=config.seed,
        pool_size=mc_pool,
    )

    # Selection worlds for InfMax_TC and the CRN baseline.
    select_index = CascadeIndex.build(graph, config.num_samples, seed=config.seed)
    trace_std_crn = infmax_std(select_index, k)
    trace_tc, _ = infmax_tc(select_index, k)

    # Evaluation worlds: fresh, shared by all methods.
    eval_index = CascadeIndex.build(
        graph, config.num_eval_samples, seed=config.seed + 1000, reduce=False
    )
    spread_std = evaluate_spread_curve(graph, trace_std.seeds, index=eval_index)
    spread_std_crn = evaluate_spread_curve(
        graph, trace_std_crn.seeds, index=eval_index
    )
    spread_tc = evaluate_spread_curve(
        graph, [int(v) for v in trace_tc.selected], index=eval_index
    )

    return Fig6Result(
        setting=setting_name,
        k=k,
        spread_std=spread_std,
        spread_std_crn=spread_std_crn,
        spread_tc=spread_tc,
        seeds_std=tuple(trace_std.seeds),
        seeds_tc=tuple(int(v) for v in trace_tc.selected),
        crossover=_find_crossover(spread_std, spread_tc),
    )


def run_fig6(
    config: ExperimentConfig | None = None,
    settings: tuple[str, ...] = SETTING_NAMES,
    mc_simulations: int | None = None,
    mc_pool: int | None = None,
) -> list[Fig6Result]:
    """Figure 6 across the requested settings (paper: all 12)."""
    config = config or ExperimentConfig()
    return [
        run_fig6_single(
            name, config, mc_simulations=mc_simulations, mc_pool=mc_pool
        )
        for name in settings
    ]


def format_fig6(results: list[Fig6Result], checkpoints: int = 10) -> str:
    """Render each setting's curves at evenly spaced seed counts."""
    from repro.utils.tables import format_series

    blocks = []
    for r in results:
        idx = np.unique(
            np.linspace(0, r.k - 1, num=min(checkpoints, r.k)).astype(int)
        )
        block = format_series(
            "|S|",
            [int(i) + 1 for i in idx],
            {
                "InfMax_std": [float(r.spread_std[i]) for i in idx],
                "InfMax_TC": [float(r.spread_tc[i]) for i in idx],
                "InfMax_std(CRN)": [float(r.spread_std_crn[i]) for i in idx],
            },
            precision=2,
            title=(
                f"Figure 6 [{r.setting}] k={r.k} "
                f"crossover={'none' if r.crossover is None else r.crossover}"
            ),
        )
        blocks.append(block)
    return "\n\n".join(blocks)
