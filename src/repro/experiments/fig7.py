"""Figure 7 — saturation analysis via the marginal-gain ratio MG_10/MG_1.

Runs the *plain* (non-lazy) greedy for both objectives on the two smallest
settings (the paper uses NetHEPT-F and Twitter-S for the same cost reason)
and reports the per-iteration ratio between the 10th-best and the best
marginal gain.  Shape check: InfMax_std's ratio approaches 1 much earlier
than InfMax_TC's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.datasets.registry import load_setting
from repro.experiments.config import ExperimentConfig
from repro.influence.saturation import (
    SaturationCurve,
    coverage_gain_ratios,
    marginal_gain_ratios,
)


@dataclass(frozen=True)
class Fig7Result:
    """Saturation curves of both methods on one setting."""

    setting: str
    std_curve: SaturationCurve
    tc_curve: SaturationCurve

    def std_saturates_earlier(self, threshold: float = 0.9) -> bool:
        """True iff InfMax_std's ratio hits ``threshold`` at an iteration no
        later than InfMax_TC's (the paper's qualitative claim)."""

        def first_hit(curve: SaturationCurve) -> int:
            above = np.flatnonzero(curve.ratios >= threshold)
            return int(above[0]) if above.size else len(curve.ratios)

        return first_hit(self.std_curve) <= first_hit(self.tc_curve)


def run_fig7_single(
    setting_name: str,
    config: ExperimentConfig | None = None,
    first_iteration: int = 5,
    num_iterations: int = 15,
    rank: int = 10,
) -> Fig7Result:
    """Both saturation curves for one setting."""
    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    index = CascadeIndex.build(setting.graph, config.num_samples, seed=config.seed)

    std_curve = marginal_gain_ratios(
        index, num_iterations, first_iteration=first_iteration, rank=rank
    )
    spheres = TypicalCascadeComputer(index).compute_all()
    tc_curve = coverage_gain_ratios(
        spheres,
        setting.graph.num_nodes,
        num_iterations,
        first_iteration=first_iteration,
        rank=rank,
    )
    return Fig7Result(setting_name, std_curve, tc_curve)


def run_fig7(
    config: ExperimentConfig | None = None,
    settings: tuple[str, ...] = ("NetHEPT-F", "Twitter-S"),
    first_iteration: int = 5,
    num_iterations: int = 15,
) -> list[Fig7Result]:
    """Figure 7 on the paper's two (smallest) settings."""
    config = config or ExperimentConfig()
    return [
        run_fig7_single(
            name,
            config,
            first_iteration=first_iteration,
            num_iterations=num_iterations,
        )
        for name in settings
    ]


def format_fig7(results: list[Fig7Result]) -> str:
    """Render the per-iteration MG ratios of both methods."""
    from repro.utils.tables import format_series

    blocks = []
    for r in results:
        length = min(len(r.std_curve.ratios), len(r.tc_curve.ratios))
        iterations = [r.std_curve.first_iteration + i + 1 for i in range(length)]
        blocks.append(
            format_series(
                "iteration",
                iterations,
                {
                    "MG10/MG1 InfMax_std": list(r.std_curve.ratios[:length]),
                    "MG10/MG1 InfMax_TC": list(r.tc_curve.ratios[:length]),
                },
                title=f"Figure 7 [{r.setting}]: marginal gain ratio",
            )
        )
    return "\n\n".join(blocks)
