"""Figure 5 — expected cost vs typical-cascade size.

Buckets every node's sphere by its size and reports the mean and maximum
cost per bucket.  The paper's shape: disregarding the very small cascades,
larger typical cascades are more reliable (lower cost), and large
high-cost cascades are practically absent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.table2 import typical_cascade_sizes


@dataclass(frozen=True)
class Fig5Bucket:
    """Cost statistics of spheres whose size falls in [size_lo, size_hi)."""

    setting: str
    size_lo: int
    size_hi: int
    count: int
    mean_cost: float
    max_cost: float


def _bucket_edges(max_size: int) -> list[tuple[int, int]]:
    """Geometric size buckets 1-2, 2-4, 4-8, ..."""
    edges = []
    lo = 1
    while lo <= max_size:
        hi = lo * 2
        edges.append((lo, hi))
        lo = hi
    return edges


def run_fig5(
    config: ExperimentConfig | None = None,
    settings: tuple[str, ...] = (
        "Digg-S",
        "Twitter-G",
        "NetHEPT-F",
        "Slashdot-W",
    ),
    max_nodes: int | None = None,
) -> list[Fig5Bucket]:
    """Size-vs-cost buckets for the requested settings."""
    config = config or ExperimentConfig()
    buckets: list[Fig5Bucket] = []
    for name in settings:
        sizes, costs = typical_cascade_sizes(name, config, max_nodes=max_nodes)
        if sizes.size == 0:
            continue
        for lo, hi in _bucket_edges(int(sizes.max())):
            in_bucket = (sizes >= lo) & (sizes < hi)
            count = int(np.count_nonzero(in_bucket))
            if count == 0:
                continue
            buckets.append(
                Fig5Bucket(
                    setting=name,
                    size_lo=lo,
                    size_hi=hi,
                    count=count,
                    mean_cost=float(costs[in_bucket].mean()),
                    max_cost=float(costs[in_bucket].max()),
                )
            )
    return buckets


def format_fig5(buckets: list[Fig5Bucket]) -> str:
    """Render the size-bucket cost statistics as a plain-text table."""
    from repro.utils.tables import format_table

    return format_table(
        ["Setting", "size in", "nodes", "mean cost", "max cost"],
        [
            (b.setting, f"[{b.size_lo}, {b.size_hi})", b.count, b.mean_cost, b.max_cost)
            for b in buckets
        ],
        title="Figure 5: expected cost vs typical cascade size",
    )


def large_spheres_are_cheaper(buckets: list[Fig5Bucket], setting: str) -> bool:
    """The paper's qualitative claim for one setting: among buckets past the
    smallest one, the largest-size bucket has mean cost no greater than the
    first such bucket."""
    rows = [b for b in buckets if b.setting == setting and b.size_lo > 1]
    if len(rows) < 2:
        return True
    return rows[-1].mean_cost <= rows[0].mean_cost + 1e-9
