"""Figure 3 — CDFs of edge probabilities.

Three panels in the paper: probabilities learnt by Saito's EM, by Goyal's
frequentist model, and assigned by the WC model (the fixed-0.1 setting is a
point mass and is not plotted).  The harness reports, per setting, the CDF
evaluated on a fixed probability grid, plus summary quantiles — enough to
check the paper's qualitative finding that Goyal-learnt probabilities are
larger than Saito-learnt ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.registry import load_setting
from repro.experiments.config import ExperimentConfig

#: Probability grid on which every CDF is evaluated.
GRID = np.array([0.001, 0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0])

#: The nine settings Figure 3 plots, grouped by panel.
PANELS = {
    "Saito": ("Digg-S", "Flixster-S", "Twitter-S"),
    "Goyal": ("Digg-G", "Flixster-G", "Twitter-G"),
    "WC": ("NetHEPT-W", "Epinions-W", "Slashdot-W"),
}


@dataclass(frozen=True)
class Fig3Curve:
    """CDF of one setting's edge probabilities.

    ``cdf[i]`` is the fraction of arcs with probability <= ``GRID[i]``.
    """

    panel: str
    setting: str
    num_edges: int
    cdf: np.ndarray
    mean: float
    median: float


def run_fig3(config: ExperimentConfig | None = None) -> list[Fig3Curve]:
    """Compute the nine CDF curves of Figure 3."""
    config = config or ExperimentConfig()
    curves = []
    for panel, settings in PANELS.items():
        for name in settings:
            setting = load_setting(name, scale=config.scale)
            probs = setting.graph.probs
            cdf = np.array([(probs <= x).mean() for x in GRID])
            curves.append(
                Fig3Curve(
                    panel=panel,
                    setting=name,
                    num_edges=int(probs.size),
                    cdf=cdf,
                    mean=float(probs.mean()),
                    median=float(np.median(probs)),
                )
            )
    return curves


def format_fig3(curves: list[Fig3Curve]) -> str:
    """Render the CDFs panel by panel."""
    from repro.utils.tables import format_table

    blocks = []
    for panel in PANELS:
        panel_curves = [c for c in curves if c.panel == panel]
        headers = ["p <=", *[c.setting for c in panel_curves]]
        rows = [
            [float(x), *[float(c.cdf[i]) for c in panel_curves]]
            for i, x in enumerate(GRID)
        ]
        rows.append(["mean p", *[c.mean for c in panel_curves]])
        blocks.append(
            format_table(headers, rows, title=f"Figure 3 ({panel} panel): CDF")
        )
    return "\n\n".join(blocks)


def mean_probability_by_method(curves: list[Fig3Curve]) -> dict[str, float]:
    """Average edge probability per panel — the cross-panel ordering check."""
    result: dict[str, float] = {}
    for panel in PANELS:
        panel_curves = [c for c in curves if c.panel == panel]
        result[panel] = float(np.mean([c.mean for c in panel_curves]))
    return result
