"""Experiment harness: one module per table/figure of the paper's
evaluation (Section 6), plus the ablation studies listed in DESIGN.md §6.

Every ``run_*`` function is deterministic in its arguments and returns
plain dataclasses; the ``format_*`` companions render the same rows/series
the paper reports.  The benchmark suite under ``benchmarks/`` drives these
at a reduced scale and records the outputs in EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentConfig, BENCH_CONFIG, TEST_CONFIG
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.fig3 import run_fig3, format_fig3
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.fig5 import run_fig5, format_fig5
from repro.experiments.fig6 import run_fig6, format_fig6
from repro.experiments.fig7 import run_fig7, format_fig7
from repro.experiments.fig8 import run_fig8, format_fig8

__all__ = [
    "ExperimentConfig",
    "BENCH_CONFIG",
    "TEST_CONFIG",
    "run_table1",
    "format_table1",
    "run_fig3",
    "format_fig3",
    "run_table2",
    "format_table2",
    "run_fig4",
    "format_fig4",
    "run_fig5",
    "format_fig5",
    "run_fig6",
    "format_fig6",
    "run_fig7",
    "format_fig7",
    "run_fig8",
    "format_fig8",
]
