"""Ablation studies for the design choices DESIGN.md §6 calls out.

* :func:`run_samples_ablation` — median quality vs number of sampled worlds
  (the empirical face of Theorem 2's constant-sample claim).
* :func:`run_index_ablation` — transitive reduction on vs off: index size
  and cascade-extraction time.
* :func:`run_median_ablation` — candidate-family comparison: full
  Chierichetti-style algorithm vs best-of-samples vs majority threshold vs
  local-search polish.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.datasets.registry import load_setting
from repro.experiments.config import ExperimentConfig
from repro.median.chierichetti import best_of_samples, jaccard_median, majority_median
from repro.median.cost import monte_carlo_expected_cost
from repro.median.local_search import local_search_refine
from repro.median.samples import SampleCollection
from repro.utils.rng import derive_rng


# --- samples ablation ---------------------------------------------------------


@dataclass(frozen=True)
class SamplesAblationRow:
    """Out-of-sample cost of medians fitted with ``num_samples`` worlds."""

    setting: str
    num_samples: int
    mean_out_of_sample_cost: float
    mean_in_sample_cost: float


def run_samples_ablation(
    setting_name: str = "Digg-S",
    config: ExperimentConfig | None = None,
    sample_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    num_nodes: int = 30,
    eval_samples: int = 200,
) -> list[SamplesAblationRow]:
    """Theorem 2 empirically: cost plateaus at a small constant l."""
    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    rng = derive_rng(config.seed + 10)
    nodes = rng.choice(graph.num_nodes, size=min(num_nodes, graph.num_nodes),
                       replace=False)

    max_l = max(sample_counts)
    index = CascadeIndex.build(graph, max_l, seed=config.seed + 11)

    rows = []
    for l in sorted(sample_counts):
        out_costs = []
        in_costs = []
        for node in nodes:
            cascades = [index.cascade(int(node), w) for w in range(l)]
            samples = SampleCollection(graph.num_nodes, cascades)
            result = jaccard_median(samples)
            in_costs.append(result.cost)
            out_costs.append(
                monte_carlo_expected_cost(
                    graph, int(node), result.median, eval_samples,
                    seed=config.seed + 12,
                )
            )
        rows.append(
            SamplesAblationRow(
                setting=setting_name,
                num_samples=l,
                mean_out_of_sample_cost=float(np.mean(out_costs)),
                mean_in_sample_cost=float(np.mean(in_costs)),
            )
        )
    return rows


# --- index ablation -----------------------------------------------------------


@dataclass(frozen=True)
class IndexAblationRow:
    """Reduced vs unreduced index on one setting."""

    setting: str
    reduced: bool
    build_seconds: float
    total_dag_edges: int
    avg_extraction_seconds: float


def run_index_ablation(
    setting_name: str = "NetHEPT-W",
    config: ExperimentConfig | None = None,
    num_queries: int = 200,
) -> list[IndexAblationRow]:
    """Transitive reduction: space saved vs extraction time."""
    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    rng = derive_rng(config.seed + 20)
    query_nodes = rng.integers(0, graph.num_nodes, size=num_queries)
    query_worlds = rng.integers(0, config.num_samples, size=num_queries)

    rows = []
    for reduced in (False, True):
        start = time.perf_counter()
        index = CascadeIndex.build(
            graph, config.num_samples, seed=config.seed, reduce=reduced
        )
        build_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for node, world in zip(query_nodes, query_worlds):
            index.cascade(int(node), int(world))
        extraction = (time.perf_counter() - start) / num_queries

        rows.append(
            IndexAblationRow(
                setting=setting_name,
                reduced=reduced,
                build_seconds=build_seconds,
                total_dag_edges=int(index.stats()["total_dag_edges"]),
                avg_extraction_seconds=extraction,
            )
        )
    return rows


# --- median-algorithm ablation ---------------------------------------------------


@dataclass(frozen=True)
class MedianAblationRow:
    """One median algorithm's aggregate quality over sampled nodes."""

    setting: str
    algorithm: str
    mean_cost: float
    mean_size: float
    mean_seconds: float


def run_median_ablation(
    setting_name: str = "Digg-S",
    config: ExperimentConfig | None = None,
    num_nodes: int = 25,
) -> list[MedianAblationRow]:
    """Compare the median candidate families in-sample."""
    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    index = CascadeIndex.build(graph, config.num_samples, seed=config.seed + 30)
    rng = derive_rng(config.seed + 31)
    nodes = rng.choice(graph.num_nodes, size=min(num_nodes, graph.num_nodes),
                       replace=False)

    algorithms = {
        "chierichetti": lambda s: jaccard_median(s),
        "best-of-samples": best_of_samples,
        "majority": majority_median,
        "chierichetti+ls": lambda s: local_search_refine(
            s, jaccard_median(s).median, max_passes=1
        ),
    }

    rows = []
    for name, algorithm in algorithms.items():
        costs, sizes, times = [], [], []
        for node in nodes:
            samples = SampleCollection(graph.num_nodes, index.cascades(int(node)))
            start = time.perf_counter()
            result = algorithm(samples)
            times.append(time.perf_counter() - start)
            costs.append(result.cost)
            sizes.append(result.size)
        rows.append(
            MedianAblationRow(
                setting=setting_name,
                algorithm=name,
                mean_cost=float(np.mean(costs)),
                mean_size=float(np.mean(sizes)),
                mean_seconds=float(np.mean(times)),
            )
        )
    return rows


# --- sparsification ablation -----------------------------------------------------


@dataclass(frozen=True)
class SparsifyAblationRow:
    """Sphere fidelity on a sparsified graph at one retention level."""

    setting: str
    fraction: float
    edges_kept: int
    probability_mass_kept: float
    mean_sphere_distance: float


def run_sparsify_ablation(
    setting_name: str = "Digg-S",
    config: ExperimentConfig | None = None,
    fractions: tuple[float, ...] = (0.9, 0.7, 0.5, 0.3),
    num_nodes: int = 25,
) -> list[SparsifyAblationRow]:
    """How much sparsification (Mathioudakis et al.) the spheres tolerate.

    Reports, per retention fraction, the mean Jaccard distance between each
    node's sphere on the full vs the sparsified graph.
    """
    from repro.graph.sparsify import retained_probability_mass, sparsify_fraction
    from repro.median.jaccard import jaccard_distance

    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    rng = derive_rng(config.seed + 40)
    nodes = rng.choice(graph.num_nodes, size=min(num_nodes, graph.num_nodes),
                       replace=False)

    full_index = CascadeIndex.build(graph, config.num_samples, seed=config.seed)
    full = {
        int(v): jaccard_median(
            SampleCollection(graph.num_nodes, full_index.cascades(int(v)))
        ).median
        for v in nodes
    }

    rows = []
    for fraction in sorted(fractions, reverse=True):
        try:
            sparse = sparsify_fraction(graph, fraction, min_out_degree=1)
        except ValueError:
            # Learnt graphs can be so sparse that reserving one arc per
            # node exceeds the budget; fall back to the pure global rule.
            sparse = sparsify_fraction(graph, fraction, min_out_degree=0)
        sparse_index = CascadeIndex.build(
            sparse, config.num_samples, seed=config.seed
        )
        distances = []
        for v in nodes:
            thin = jaccard_median(
                SampleCollection(sparse.num_nodes, sparse_index.cascades(int(v)))
            ).median
            distances.append(jaccard_distance(full[int(v)], thin))
        rows.append(
            SparsifyAblationRow(
                setting=setting_name,
                fraction=fraction,
                edges_kept=sparse.num_edges,
                probability_mass_kept=retained_probability_mass(graph, sparse),
                mean_sphere_distance=float(np.mean(distances)),
            )
        )
    return rows


# --- MinHash ablation -------------------------------------------------------------


@dataclass(frozen=True)
class MinhashAblationRow:
    """Accuracy/speed of sketched vs exact cost evaluation."""

    setting: str
    num_hashes: int
    mean_abs_cost_error: float
    exact_seconds: float
    sketch_seconds: float


def run_minhash_ablation(
    setting_name: str = "Flixster-G",
    config: ExperimentConfig | None = None,
    hash_counts: tuple[int, ...] = (32, 128, 512),
    num_nodes: int = 15,
) -> list[MinhashAblationRow]:
    """Sketched empirical-cost accuracy vs number of hash functions."""
    from repro.median.minhash import MinHasher, estimate_mean_distance

    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    index = CascadeIndex.build(graph, config.num_samples, seed=config.seed + 50)
    rng = derive_rng(config.seed + 51)
    nodes = rng.choice(graph.num_nodes, size=min(num_nodes, graph.num_nodes),
                       replace=False)

    instances = []
    for v in nodes:
        cascades = index.cascades(int(v))
        samples = SampleCollection(graph.num_nodes, cascades)
        median = jaccard_median(samples)
        instances.append((cascades, samples, median))

    rows = []
    for num_hashes in hash_counts:
        hasher = MinHasher(num_hashes, seed=config.seed + 52)
        errors = []
        exact_time = 0.0
        sketch_time = 0.0
        for cascades, samples, median in instances:
            start = time.perf_counter()
            exact = samples.mean_distance(median.median)
            exact_time += time.perf_counter() - start

            start = time.perf_counter()
            sigs = hasher.signatures(cascades)
            cand_sig = hasher.signature(median.median)
            sketched = estimate_mean_distance(cand_sig, sigs)
            sketch_time += time.perf_counter() - start
            errors.append(abs(sketched - exact))
        rows.append(
            MinhashAblationRow(
                setting=setting_name,
                num_hashes=num_hashes,
                mean_abs_cost_error=float(np.mean(errors)),
                exact_seconds=exact_time / len(instances),
                sketch_seconds=sketch_time / len(instances),
            )
        )
    return rows


def format_ablation_rows(rows, title: str) -> str:
    """Generic renderer for any of the ablation row lists."""
    from dataclasses import asdict, fields

    from repro.utils.tables import format_table

    if not rows:
        return f"{title}: (no rows)"
    headers = [f.name for f in fields(rows[0])]
    table_rows = [[asdict(r)[h] for h in headers] for r in rows]
    return format_table(headers, table_rows, precision=4, title=title)
