"""EXPERIMENTS.md assembly from benchmark result artefacts.

The benchmark suite writes each regenerated table/figure to
``results/<name>.txt``.  :func:`build_experiments_markdown` stitches those
artefacts together with the paper-vs-measured commentary into the
EXPERIMENTS.md deliverable, so the document always reflects the latest
benchmark run.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

#: Per-artefact commentary: (result file stem, title, paper reference,
#: expectation, shape notes template).
_SECTIONS: tuple[tuple[str, str, str, str], ...] = (
    (
        "table1",
        "Table 1 — dataset characteristics",
        "Six benchmark graphs, 15K-137K nodes; Digg/Epinions/Slashdot "
        "directed, the rest undirected; probabilities learnt for "
        "Digg/Flixster/Twitter, assigned for the SNAP graphs.",
        "Stand-ins keep the directedness, the learnt/assigned split and the "
        "relative ordering of sizes (Flixster largest) at reduced scale.",
    ),
    (
        "fig3",
        "Figure 3 — CDFs of edge probabilities",
        "Goyal-learnt probabilities are larger than Saito-learnt "
        "ones; WC probabilities concentrate at small values.",
        "Measured mean probability ordering Goyal >= Saito >= WC holds; the "
        "frequentist model's co-parent overcounting produces the same "
        "upward bias as in the paper.",
    ),
    (
        "table2",
        "Table 2 — typical cascade size statistics",
        "avg(|C*|) spans 3.0 (NetHEPT-W) to 4774.5 (Epinions-F); "
        "-G settings exceed -S settings, fixed-0.1 dwarfs weighted-cascade.",
        "Measured: the same three orderings (G >= S per family; F >> W; WC "
        "settings tiny relative to |V|).  Absolute sizes are smaller at the "
        "reduced graph scale.",
    ),
    (
        "fig4",
        "Figure 4 — per-node computation time",
        "Typical-cascade and expected-cost computation almost always "
        "well under 1 second per node (Python, Xeon 2.2GHz), heavy right "
        "tail.",
        "Measured: p90 well under a second with a visible right tail — same "
        "shape, different hardware.",
    ),
    (
        "fig5",
        "Figure 5 — expected cost vs typical-cascade size",
        "Disregarding very small cascades, larger typical cascades "
        "have lower cost, and large cascades with large cost are "
        "practically absent.",
        "Measured: the supercritical settings (Epinions-F most cleanly) "
        "show monotone cost decay with size; the largest buckets never "
        "carry near-maximal cost.",
    ),
    (
        "fig6",
        "Figure 6 — expected spread, InfMax_std vs InfMax_TC",
        "InfMax_std wins the first seeds, the curves cross, and "
        "InfMax_TC wins for large seed sets, across all 12 settings with "
        "k up to 200.",
        "Measured: the crossover reproduces when InfMax_std estimates "
        "marginal gains the way the paper-era implementations do — each "
        "estimate a difference of two independent Monte Carlo runs "
        "(infmax_std_mc).  A modern common-random-numbers greedy "
        "(InfMax_std(CRN), also reported) removes the late-stage noise and "
        "postpones the crossover beyond reachable budgets: the paper's "
        "effect is real and its mechanism is exactly the estimation noise "
        "the saturation analysis (Figure 7) points at.",
    ),
    (
        "fig7",
        "Figure 7 — saturation analysis (MG_10/MG_1)",
        "InfMax_std's marginal-gain ratio approaches 1 (cannot "
        "distinguish the top-10 candidates) far earlier than InfMax_TC's.",
        "Measured: same ordering — the std ratio is already high in the "
        "observed window while the coverage ratio keeps discriminating.",
    ),
    (
        "fig8",
        "Figure 8 — stability of the selected seed sets",
        "Expected cost decreases as seed sets grow, and InfMax_TC's "
        "seed sets are consistently more stable than InfMax_std's.",
        "Measured: both trends hold on the majority of settings.",
    ),
    (
        "ablation_samples",
        "Ablation — samples vs median quality (Theorem 2)",
        "Theorem 2: a constant number of samples suffices for a "
        "multiplicative approximation, independent of n.",
        "Measured: out-of-sample cost plateaus by l~16-32 samples.",
    ),
    (
        "ablation_index",
        "Ablation — transitive reduction of the index",
        "Section 4: the reduction shrinks the index while "
        "preserving reachability.",
        "Measured: fewer DAG arcs at equal extraction results.",
    ),
    (
        "ablation_median",
        "Ablation — median algorithm families",
        "The paper uses the Chierichetti et al. Section 3.2 algorithm.",
        "Measured: the combined candidate families dominate best-of-samples "
        "and the majority threshold; local search polishes marginally.",
    ),
    (
        "ablation_sparsify",
        "Ablation — influence-network sparsification",
        "Related work (Mathioudakis et al., KDD'11): influence networks can "
        "be sparsified while preserving propagation behaviour.",
        "Measured: spheres computed on the top-probability backbone stay "
        "close (small Jaccard distance) to the full-graph spheres, "
        "degrading gracefully as arcs are dropped.",
    ),
    (
        "ablation_minhash",
        "Ablation — MinHash-sketched cost evaluation",
        "Related work (Cohen et al., CIKM'14): sketches make influence "
        "computations cheap with bounded error.",
        "Measured: sketched empirical costs track exact ones, with error "
        "shrinking as the number of hash functions grows.",
    ),
)

_HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of the paper's evaluation (Section 6), regenerated
by `pytest benchmarks/ --benchmark-only` on the synthetic dataset stand-ins
(DESIGN.md §3-4).  Absolute numbers are not comparable by design (reduced
scale, pure-Python substrate); each section states the paper's qualitative
claim and what this reproduction measures.  The raw artefacts live in
`results/`.
"""


@dataclass(frozen=True)
class Section:
    name: str
    title: str
    paper: str
    measured: str
    artefact: str | None


def collect_sections(results_dir: pathlib.Path) -> list[Section]:
    """Pair the commentary with whatever artefacts the last run produced."""
    sections = []
    for stem, title, paper, measured in _SECTIONS:
        path = results_dir / f"{stem}.txt"
        artefact = path.read_text(encoding="utf-8") if path.exists() else None
        sections.append(Section(stem, title, paper, measured, artefact))
    return sections


def build_experiments_markdown(results_dir: pathlib.Path) -> str:
    """Assemble the full EXPERIMENTS.md text."""
    parts = [_HEADER]
    for section in collect_sections(results_dir):
        parts.append(f"\n## {section.title}\n")
        parts.append(f"**Paper.** {section.paper}\n")
        parts.append(f"**Measured.** {section.measured}\n")
        if section.artefact:
            parts.append("```text\n" + section.artefact.rstrip() + "\n```\n")
        else:
            parts.append(
                "_No artefact found — run `pytest benchmarks/"
                " --benchmark-only` to generate it._\n"
            )
    return "\n".join(parts)


def write_experiments_markdown(
    results_dir: pathlib.Path, output_path: pathlib.Path
) -> None:
    """Assemble and write EXPERIMENTS.md to ``output_path``."""
    output_path.write_text(build_experiments_markdown(results_dir), encoding="utf-8")
