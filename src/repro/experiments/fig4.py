"""Figure 4 — per-node running time of typical-cascade computation.

Two measurements per node, matching the paper's two plot pairs:

* time to extract the node's cascades from the index and compute the
  Jaccard median (index construction excluded, as in the paper);
* time to estimate the expected cost of that median against fresh worlds.

The harness reports the distribution percentiles; the paper's shape check
is "almost always well under 1 second, heavy right tail".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.datasets.registry import load_setting
from repro.experiments.config import ExperimentConfig
from repro.median.cost import monte_carlo_expected_cost
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class Fig4Row:
    """Timing distribution for one setting (seconds)."""

    setting: str
    num_nodes_timed: int
    median_time_p50: float
    median_time_p90: float
    median_time_p99: float
    median_time_max: float
    cost_time_p50: float
    cost_time_p90: float
    cost_time_max: float


def run_fig4(
    config: ExperimentConfig | None = None,
    settings: tuple[str, ...] = ("Digg-S", "Twitter-S", "NetHEPT-W", "NetHEPT-F"),
    max_nodes: int = 300,
) -> list[Fig4Row]:
    """Time typical-cascade and expected-cost computation per node."""
    config = config or ExperimentConfig()
    rows = []
    for name in settings:
        setting = load_setting(name, scale=config.scale)
        graph = setting.graph
        index = CascadeIndex.build(graph, config.num_samples, seed=config.seed)
        computer = TypicalCascadeComputer(index)

        nodes = np.arange(graph.num_nodes)
        if max_nodes < graph.num_nodes:
            rng = derive_rng(config.seed + 2)
            nodes = rng.choice(graph.num_nodes, size=max_nodes, replace=False)

        median_times = np.zeros(nodes.size)
        cost_times = np.zeros(nodes.size)
        for i, node in enumerate(nodes):
            start = time.perf_counter()
            sphere = computer.compute(int(node))
            median_times[i] = time.perf_counter() - start

            start = time.perf_counter()
            monte_carlo_expected_cost(
                graph,
                int(node),
                sphere.members,
                config.num_eval_samples,
                seed=config.seed + 3,
            )
            cost_times[i] = time.perf_counter() - start

        rows.append(
            Fig4Row(
                setting=name,
                num_nodes_timed=int(nodes.size),
                median_time_p50=float(np.percentile(median_times, 50)),
                median_time_p90=float(np.percentile(median_times, 90)),
                median_time_p99=float(np.percentile(median_times, 99)),
                median_time_max=float(median_times.max()),
                cost_time_p50=float(np.percentile(cost_times, 50)),
                cost_time_p90=float(np.percentile(cost_times, 90)),
                cost_time_max=float(cost_times.max()),
            )
        )
    return rows


def format_fig4(rows: list[Fig4Row]) -> str:
    """Render the timing percentiles as a plain-text table."""
    from repro.utils.tables import format_table

    return format_table(
        [
            "Setting",
            "nodes",
            "median p50(s)",
            "median p90(s)",
            "median p99(s)",
            "median max(s)",
            "cost p50(s)",
            "cost p90(s)",
            "cost max(s)",
        ],
        [
            (
                r.setting,
                r.num_nodes_timed,
                r.median_time_p50,
                r.median_time_p90,
                r.median_time_p99,
                r.median_time_max,
                r.cost_time_p50,
                r.cost_time_p90,
                r.cost_time_max,
            )
            for r in rows
        ],
        precision=4,
        title="Figure 4: per-node computation time",
    )
