"""Figure 8 — stability of the selected seed sets.

For growing prefixes of each method's seed sequence, computes the expected
cost of the seed set's typical cascade against fresh random cascades from
the same seed set (exactly the paper's caption).  Shape check: InfMax_TC's
seed sets are consistently more stable (lower expected cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.stability import seed_set_stability
from repro.datasets.registry import load_setting
from repro.experiments.config import ExperimentConfig
from repro.influence.greedy_std import infmax_std_mc
from repro.influence.greedy_tc import infmax_tc


@dataclass(frozen=True)
class Fig8Result:
    """Stability curves of both methods on one setting.

    ``checkpoints[i]`` is a seed-set size; ``cost_std[i]`` / ``cost_tc[i]``
    the expected cost of the corresponding prefix seed set's typical
    cascade.
    """

    setting: str
    checkpoints: tuple[int, ...]
    cost_std: np.ndarray
    cost_tc: np.ndarray

    @property
    def tc_more_stable_fraction(self) -> float:
        """Fraction of checkpoints where InfMax_TC is at least as stable."""
        return float(np.mean(self.cost_tc <= self.cost_std + 1e-9))


def run_fig8_single(
    setting_name: str,
    config: ExperimentConfig | None = None,
    num_checkpoints: int = 5,
) -> Fig8Result:
    """Stability comparison on one setting."""
    config = config or ExperimentConfig()
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    k = min(config.k, graph.num_nodes)

    trace_std = infmax_std_mc(
        graph,
        k,
        num_simulations=int(1.5 * config.num_samples),
        seed=config.seed,
        pool_size=6 * config.num_samples,
    )
    select_index = CascadeIndex.build(graph, config.num_samples, seed=config.seed)
    trace_tc, _ = infmax_tc(select_index, k)
    seeds_std = trace_std.seeds
    seeds_tc = [int(v) for v in trace_tc.selected]

    # Typical cascades of the prefixes are computed on fresh worlds, and the
    # expected cost is evaluated on yet another independent world stream.
    stability_index = CascadeIndex.build(
        graph, config.num_samples, seed=config.seed + 2000, reduce=False
    )
    checkpoints = tuple(
        int(c) for c in np.unique(np.linspace(1, k, num=min(num_checkpoints, k)).astype(int))
    )
    cost_std = np.zeros(len(checkpoints))
    cost_tc = np.zeros(len(checkpoints))
    for i, c in enumerate(checkpoints):
        _, cost_std[i] = seed_set_stability(
            graph,
            seeds_std[:c],
            stability_index,
            num_eval_samples=config.num_eval_samples,
            seed=config.seed + 3000,
        )
        _, cost_tc[i] = seed_set_stability(
            graph,
            seeds_tc[:c],
            stability_index,
            num_eval_samples=config.num_eval_samples,
            seed=config.seed + 3000,
        )
    return Fig8Result(setting_name, checkpoints, cost_std, cost_tc)


def run_fig8(
    config: ExperimentConfig | None = None,
    settings: tuple[str, ...] = (
        "Digg-S",
        "Twitter-S",
        "Flixster-G",
        "NetHEPT-W",
        "Slashdot-W",
        "Epinions-F",
    ),
    num_checkpoints: int = 5,
) -> list[Fig8Result]:
    """Figure 8's six settings."""
    config = config or ExperimentConfig()
    return [
        run_fig8_single(name, config, num_checkpoints=num_checkpoints)
        for name in settings
    ]


def format_fig8(results: list[Fig8Result]) -> str:
    """Render the stability curves of both methods."""
    from repro.utils.tables import format_series

    blocks = []
    for r in results:
        blocks.append(
            format_series(
                "|S|",
                list(r.checkpoints),
                {
                    "cost InfMax_std": list(r.cost_std),
                    "cost InfMax_TC": list(r.cost_tc),
                },
                title=(
                    f"Figure 8 [{r.setting}]: seed-set stability "
                    f"(TC at least as stable at "
                    f"{r.tc_more_stable_fraction:.0%} of checkpoints)"
                ),
            )
        )
    return "\n\n".join(blocks)
