"""Shared experiment configuration.

The paper runs with 1000 samples, k = 200 seeds, and graphs of 15k-137k
nodes.  This reproduction scales all three down together so that the full
suite completes on a laptop in pure Python (the calibration note flags
Monte Carlo sampling as the bottleneck); shapes, not absolute numbers, are
the reproduction target (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment harnesses.

    Attributes:
        scale: node-count multiplier applied to the dataset stand-ins
            (1.0 = the default sizes of DESIGN.md §4).
        num_samples: sampled worlds per index (paper: 1000).
        num_eval_samples: fresh worlds for out-of-sample evaluation.
        k: seed-set size for the influence-maximisation experiments
            (paper: 200).
        seed: master RNG seed.
    """

    scale: float = 1.0
    num_samples: int = 128
    num_eval_samples: int = 128
    k: int = 50
    seed: int = 20160626  # SIGMOD'16 opened June 26, 2016

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A copy with ``scale`` multiplied by ``factor``."""
        return ExperimentConfig(
            scale=self.scale * factor,
            num_samples=self.num_samples,
            num_eval_samples=self.num_eval_samples,
            k=self.k,
            seed=self.seed,
        )


#: Configuration used by the benchmark suite (kept small enough that the
#: full table/figure sweep completes in minutes).
BENCH_CONFIG = ExperimentConfig(
    scale=0.12, num_samples=64, num_eval_samples=64, k=20
)

#: Configuration used by integration tests (seconds, not minutes).
TEST_CONFIG = ExperimentConfig(
    scale=0.03, num_samples=24, num_eval_samples=24, k=5
)
