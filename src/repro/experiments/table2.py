"""Table 2 — size statistics of the typical cascades.

For every setting, computes the typical cascade of every node (Algorithm 2)
and reports the average, standard deviation and maximum of |C*| over all
nodes — the paper's Table 2 columns.  ``max_nodes`` optionally subsamples
nodes (deterministically) to keep small-budget runs fast; the paper uses
all nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.datasets.registry import SETTING_NAMES, load_setting
from repro.experiments.config import ExperimentConfig
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class Table2Row:
    """Typical-cascade size statistics for one setting."""

    setting: str
    num_nodes_evaluated: int
    avg_size: float
    sd_size: float
    max_size: int
    avg_cost: float


def typical_cascade_sizes(
    setting_name: str,
    config: ExperimentConfig,
    max_nodes: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(sizes, costs) of the typical cascades of (a sample of) all nodes."""
    setting = load_setting(setting_name, scale=config.scale)
    graph = setting.graph
    index = CascadeIndex.build(graph, config.num_samples, seed=config.seed)
    computer = TypicalCascadeComputer(index)

    nodes = np.arange(graph.num_nodes)
    if max_nodes is not None and max_nodes < graph.num_nodes:
        rng = derive_rng(config.seed + 1)
        nodes = np.sort(rng.choice(graph.num_nodes, size=max_nodes, replace=False))

    sizes = np.zeros(nodes.size, dtype=np.int64)
    costs = np.zeros(nodes.size, dtype=np.float64)
    for i, node in enumerate(nodes):
        sphere = computer.compute(int(node))
        sizes[i] = sphere.size
        costs[i] = sphere.cost
    return sizes, costs


def run_table2(
    config: ExperimentConfig | None = None,
    settings: tuple[str, ...] = SETTING_NAMES,
    max_nodes: int | None = None,
) -> list[Table2Row]:
    """Table 2 rows for the requested settings."""
    config = config or ExperimentConfig()
    rows = []
    for name in settings:
        sizes, costs = typical_cascade_sizes(name, config, max_nodes=max_nodes)
        rows.append(
            Table2Row(
                setting=name,
                num_nodes_evaluated=int(sizes.size),
                avg_size=float(sizes.mean()),
                sd_size=float(sizes.std()),
                max_size=int(sizes.max()),
                avg_cost=float(costs.mean()),
            )
        )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render in the paper's Table 2 layout (plus the avg-cost column)."""
    from repro.utils.tables import format_table

    return format_table(
        ["Datasets", "avg(|C*|)", "sd(|C*|)", "max(|C*|)", "avg cost", "nodes"],
        [
            (r.setting, r.avg_size, r.sd_size, r.max_size, r.avg_cost,
             r.num_nodes_evaluated)
            for r in rows
        ],
        precision=1,
        title="Table 2: Typical cascade size statistics",
    )
