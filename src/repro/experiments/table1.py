"""Table 1 — dataset characteristics.

Reports |V|, |E|, type (directed/undirected) and probability source for the
six dataset stand-ins, in the paper's row order.  |E| counts arcs of the
base topology (for reciprocal graphs each undirected edge contributes two
arcs, matching the paper's "edges existing in both directions" handling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import load_base_topology, load_setting
from repro.experiments.config import ExperimentConfig


@dataclass(frozen=True)
class Table1Row:
    """One dataset row of Table 1."""

    dataset: str
    num_nodes: int
    num_edges: int
    graph_type: str
    probabilities: str


#: (family, representative setting, probability column) in paper order.
_ROWS = (
    ("Digg", "Digg-S", "learnt"),
    ("Flixster", "Flixster-S", "learnt"),
    ("Twitter", "Twitter-S", "learnt"),
    ("NetHEPT", "NetHEPT-W", "assigned"),
    ("Epinions", "Epinions-W", "assigned"),
    ("Slashdot", "Slashdot-W", "assigned"),
)


def run_table1(config: ExperimentConfig | None = None) -> list[Table1Row]:
    """Materialise the six datasets and report their characteristics."""
    config = config or ExperimentConfig()
    rows = []
    for family, setting_name, prob_source in _ROWS:
        setting = load_setting(setting_name, scale=config.scale)
        base = load_base_topology(family, scale=config.scale)
        rows.append(
            Table1Row(
                dataset=family,
                num_nodes=base.num_nodes,
                num_edges=base.num_edges,
                graph_type="directed" if setting.directed else "undirected",
                probabilities=prob_source,
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render in the paper's Table 1 layout."""
    from repro.utils.tables import format_table

    return format_table(
        ["Datasets", "|V|", "|E|", "Type", "Probabilities"],
        [
            (r.dataset, r.num_nodes, r.num_edges, r.graph_type, r.probabilities)
            for r in rows
        ],
        title="Table 1: Dataset characteristics (scaled stand-ins)",
    )
