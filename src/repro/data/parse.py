"""Constant-memory streaming parser for SNAP-format edge lists.

The SNAP collection (and the influence-maximisation literature built on
it) ships graphs as whitespace-separated edge lists — ``u<TAB>v`` with
``#`` comment headers, often gzipped, with duplicate arcs and the odd
self-loop.  ``read_edge_list`` handles such files for small graphs, but
it funnels everything through an in-memory :class:`GraphBuilder` — a
python dict of ``(u, v)`` tuples costing ~100 bytes per arc, O(file) RSS
on a million-edge download.

This module keeps peak memory **O(nodes)** instead:

1. **parse** — the file streams through in bounded text blocks; edges are
   validated and appended to on-disk *spill* files (raw little-endian
   arrays) in fixed-size chunks.  Only the node-label table ever lives in
   RAM.
2. **remap** — integer labels are densified by a streaming unique pass
   (sorted label order) and a streaming ``searchsorted`` rewrite of the
   spill; the table is persisted as the ``labels.npy`` sidecar.
3. **assemble** — the spilled arc list is sorted by ``(source, target)``
   with two stable counting-sort passes over memory-mapped scratch files
   (O(nodes) counters, O(1) chunk buffers), then deduplicated by a
   streaming run-reduce honouring the ``on_duplicate`` policy, producing
   the final CSR columns (``indptr.npy``, ``targets.npy`` and, when the
   file carries probabilities, ``probs.npy``).

Both phases expose the ``data.parse`` fault site (chunk ordinals during
parse, stage names during assembly) so the chaos gate can crash the
pipeline at any point and prove resume reaches a bit-identical result.

Files with *string* node ids take a slower dict-based path (such graphs
are small); integer-id files — the entire SNAP collection — stay on the
vectorised path.  A file's id mode is fixed by its first data block.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator, Union

import numpy as np

from repro.data.errors import ParseError
from repro.runtime.faults import maybe_fire

PathLike = Union[str, os.PathLike]

#: Edges buffered in memory before a spill-chunk write.
CHUNK_EDGES = 1 << 17

#: Characters of text pulled from the file per block read.
_BLOCK_CHARS = 1 << 20

#: Spill/scratch file names inside a staging directory.
SPILL_SOURCES = "spill_sources.bin"
SPILL_TARGETS = "spill_targets.bin"
SPILL_PROBS = "spill_probs.bin"
LABELS_NAME = "labels.npy"

_DUPLICATE_POLICIES = ("first", "error", "max")
_SELF_LOOP_POLICIES = ("drop", "error")

#: Dense node ids are stored as uint32: 4 billion nodes is comfortably
#: beyond any SNAP graph and halves the scatter traffic vs int64.
_MAX_NODES = 2**31 - 1


@dataclass
class ParseStats:
    """Line- and edge-level accounting of one streamed parse."""

    data_lines: int = 0
    comment_lines: int = 0
    blank_lines: int = 0
    self_loops_dropped: int = 0
    raw_edges: int = 0
    chars_read: int = 0
    columns: int = 0
    int_labels: bool = True

    def to_mapping(self) -> dict:
        return {
            "data_lines": self.data_lines,
            "comment_lines": self.comment_lines,
            "blank_lines": self.blank_lines,
            "self_loops_dropped": self.self_loops_dropped,
            "raw_edges": self.raw_edges,
            "columns": self.columns,
            "int_labels": self.int_labels,
        }


@dataclass
class ParseResult:
    """Outcome of the parse + remap phase."""

    stats: ParseStats
    num_nodes: int = 0
    has_probs: bool = False


@dataclass
class AssembleStats:
    """Outcome of the sort + dedup + CSR phase."""

    kept_edges: int = 0
    duplicate_edges: int = 0
    chunks: int = field(default=0, repr=False)

    def to_mapping(self) -> dict:
        return {
            "kept_edges": self.kept_edges,
            "duplicate_edges": self.duplicate_edges,
        }


def open_edge_text(path: PathLike) -> IO[str]:
    """Open a plain or gzipped edge list as a text stream.

    Gzip is detected by suffix; decompression is streamed, never
    materialised.  Truncated gzip payloads surface later, as
    :class:`ParseError`, when the stream hits the broken tail.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8", errors="strict")
    return open(path, "r", encoding="utf-8", errors="strict")


def _iter_blocks(handle: IO[str], path: str) -> Iterator[tuple[int, list[str]]]:
    """Yield ``(first_lineno, lines)`` blocks of bounded character count."""
    lineno = 1
    carry = ""
    while True:
        try:
            text = handle.read(_BLOCK_CHARS)
        except (EOFError, OSError) as exc:
            raise ParseError(
                f"unreadable or truncated stream: {exc}", path=path, lineno=lineno
            ) from exc
        if not text:
            if carry:
                yield lineno, [carry]
            return
        text = carry + text
        lines = text.split("\n")
        carry = lines.pop()
        if lines:
            yield lineno, lines
            lineno += len(lines)


class _SpillWriter:
    """Append-only raw-array spill of (source, target[, prob]) chunks."""

    def __init__(self, staging: Path, with_probs: bool) -> None:
        self._sources = open(staging / SPILL_SOURCES, "wb")
        self._targets = open(staging / SPILL_TARGETS, "wb")
        self._probs = open(staging / SPILL_PROBS, "wb") if with_probs else None
        self.chunks = 0

    def write(self, u: np.ndarray, v: np.ndarray, p: np.ndarray | None) -> None:
        maybe_fire("data.parse", key=self.chunks)
        self._sources.write(np.ascontiguousarray(u).tobytes())
        self._targets.write(np.ascontiguousarray(v).tobytes())
        if self._probs is not None:
            if p is None:
                raise AssertionError("spill opened with probs but chunk has none")
            self._probs.write(np.ascontiguousarray(p, dtype=np.float64).tobytes())
        self.chunks += 1

    def close(self) -> None:
        self._sources.close()
        self._targets.close()
        if self._probs is not None:
            self._probs.close()


def _check_probs(
    p: np.ndarray, path: str, linenos: list[int], lines: list[str]
) -> None:
    bad = ~np.isfinite(p) | (p <= 0.0) | (p > 1.0)
    if bool(bad.any()):
        _reparse_block_for_error(path, linenos, lines, columns=3)
        raise ParseError(
            "probability outside (0, 1] in block", path=path, lineno=linenos[0]
        )


def _reparse_block_for_error(
    path: str, linenos: list[int], lines: list[str], *, columns: int
) -> None:
    """Slow per-line scan of a failed block to pinpoint the bad line.

    ``linenos`` carries each data line's absolute 1-based line number.
    Raises :class:`ParseError` at the first offending line; returns
    normally only if the block was actually well-formed (the caller then
    raises its own, coarser error).
    """
    for lineno, line in zip(linenos, lines):
        parts = line.split()
        if len(parts) != columns:
            raise ParseError(
                f"expected {columns} columns, got {len(parts)}",
                path=path,
                lineno=lineno,
            )
        if columns == 3:
            try:
                p = float(parts[2])
            except ValueError as exc:
                raise ParseError(
                    f"bad probability {parts[2]!r}",
                    path=path,
                    lineno=lineno,
                ) from exc
            if not np.isfinite(p) or p <= 0.0 or p > 1.0:
                raise ParseError(
                    f"probability {parts[2]!r} outside (0, 1]",
                    path=path,
                    lineno=lineno,
                )


def parse_edge_file(
    path: PathLike,
    staging: PathLike,
    *,
    on_self_loop: str = "drop",
    chunk_edges: int = CHUNK_EDGES,
) -> ParseResult:
    """Stream ``path`` into spill files + ``labels.npy`` under ``staging``.

    Returns a :class:`ParseResult`; ``staging`` afterwards holds dense
    uint32 spill arrays (sorted-label id order for integer-id files,
    first-appearance order for string-id files) ready for
    :func:`assemble_csr`.
    """
    if on_self_loop not in _SELF_LOOP_POLICIES:
        raise ValueError(
            f"on_self_loop must be one of {_SELF_LOOP_POLICIES}, got {on_self_loop!r}"
        )
    staging = Path(staging)
    staging.mkdir(parents=True, exist_ok=True)
    stats = ParseStats()
    path_str = str(path)

    writer: _SpillWriter | None = None
    string_parser: _StringModeParser | None = None
    pending_u: list[np.ndarray] = []
    pending_v: list[np.ndarray] = []
    pending_p: list[np.ndarray] = []
    pending = 0

    def flush() -> None:
        nonlocal pending
        if writer is None or pending == 0:
            return
        u = np.concatenate(pending_u) if len(pending_u) > 1 else pending_u[0]
        v = np.concatenate(pending_v) if len(pending_v) > 1 else pending_v[0]
        p = None
        if stats.columns == 3:
            p = np.concatenate(pending_p) if len(pending_p) > 1 else pending_p[0]
        writer.write(u, v, p)
        pending_u.clear()
        pending_v.clear()
        pending_p.clear()
        pending = 0

    with open_edge_text(path) as handle:
        for block_start, lines in _iter_blocks(handle, path_str):
            stats.chars_read += sum(len(line) + 1 for line in lines)
            data: list[str] = []
            linenos: list[int] = []
            for offset, raw in enumerate(lines):
                line = raw.strip()
                if not line:
                    stats.blank_lines += 1
                elif line.startswith("#"):
                    stats.comment_lines += 1
                else:
                    data.append(line)
                    linenos.append(block_start + offset)
            if not data:
                continue
            stats.data_lines += len(data)
            if stats.columns == 0:
                stats.columns = len(data[0].split())
                if stats.columns not in (2, 3):
                    raise ParseError(
                        f"expected 2 or 3 columns, got {stats.columns}",
                        path=path_str,
                        lineno=linenos[0],
                    )
            if string_parser is not None:
                string_parser.feed(data, linenos)
                continue
            parsed = _parse_block_fast(data, stats.columns, path_str, linenos)
            if parsed is None:
                # Non-integer node ids: this file uses string labels.
                if stats.raw_edges:
                    raise ParseError(
                        "non-integer node id after integer-id prefix",
                        path=path_str,
                        lineno=linenos[0],
                    )
                stats.int_labels = False
                string_parser = _StringModeParser(
                    staging, stats, on_self_loop, chunk_edges, path_str
                )
                string_parser.feed(data, linenos)
                continue
            u, v, p = parsed
            loops = u == v
            n_loops = int(loops.sum())
            if n_loops:
                if on_self_loop == "error":
                    first = int(np.flatnonzero(loops)[0])
                    raise ParseError(
                        f"self-loop on node {int(u[first])}",
                        path=path_str,
                        lineno=linenos[first],
                    )
                stats.self_loops_dropped += n_loops
                keep = ~loops
                u, v = u[keep], v[keep]
                if p is not None:
                    p = p[keep]
            if writer is None:
                writer = _SpillWriter(staging, with_probs=stats.columns == 3)
            pending_u.append(u)
            pending_v.append(v)
            if p is not None:
                pending_p.append(p)
            pending += len(u)
            stats.raw_edges += len(u)
            if pending >= chunk_edges:
                flush()

    if string_parser is not None:
        string_parser.finish()
        return ParseResult(
            stats=stats,
            num_nodes=string_parser.num_nodes,
            has_probs=stats.columns == 3,
        )
    if writer is None:
        # No data lines at all: an empty (but well-formed) edge list.
        writer = _SpillWriter(staging, with_probs=False)
        stats.columns = stats.columns or 2
    flush()
    writer.close()
    num_nodes = _remap_int_labels(staging, stats, chunk_edges)
    return ParseResult(stats=stats, num_nodes=num_nodes, has_probs=stats.columns == 3)


def _parse_block_fast(
    data: list[str], columns: int, path: str, linenos: list[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None] | None:
    """Vectorised block parse; ``None`` means string-labelled ids."""
    tokens = np.array(" ".join(data).split())
    if tokens.size != len(data) * columns:
        _reparse_block_for_error(path, linenos, data, columns=columns)
        raise ParseError(
            "inconsistent column count in block", path=path, lineno=linenos[0]
        )
    grid = tokens.reshape(len(data), columns)
    try:
        u = grid[:, 0].astype(np.int64)
        v = grid[:, 1].astype(np.int64)
    except ValueError:
        return None
    negative = (u < 0) | (v < 0)
    if bool(negative.any()):
        first = int(np.flatnonzero(negative)[0])
        raise ParseError(
            f"negative node id {int(min(u[first], v[first]))}",
            path=path,
            lineno=linenos[first],
        )
    p = None
    if columns == 3:
        try:
            p = grid[:, 2].astype(np.float64)
        except ValueError:
            _reparse_block_for_error(path, linenos, data, columns=3)
            raise ParseError(
                "bad probability column in block", path=path, lineno=linenos[0]
            ) from None
        _check_probs(p, path, linenos, data)
    return u, v, p


class _StringModeParser:
    """Dict-based slow path for files whose node ids are not integers."""

    def __init__(
        self,
        staging: Path,
        stats: ParseStats,
        on_self_loop: str,
        chunk_edges: int,
        path: str,
    ) -> None:
        self._staging = staging
        self._stats = stats
        self._on_self_loop = on_self_loop
        self._chunk = chunk_edges
        self._path = path
        self._ids: dict[str, int] = {}
        self._labels: list[str] = []
        self._u: list[int] = []
        self._v: list[int] = []
        self._p: list[float] = []
        self._writer = _SpillWriter(staging, with_probs=stats.columns == 3)

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    def _intern(self, token: str) -> int:
        node = self._ids.get(token)
        if node is None:
            node = len(self._labels)
            self._ids[token] = node
            self._labels.append(token)
        return node

    def feed(self, data: list[str], linenos: list[int]) -> None:
        columns = self._stats.columns
        path = self._path
        for lineno, line in zip(linenos, data):
            parts = line.split()
            if len(parts) != columns:
                raise ParseError(
                    f"expected {columns} columns, got {len(parts)}",
                    path=path,
                    lineno=lineno,
                )
            prob = 0.0
            if columns == 3:
                try:
                    prob = float(parts[2])
                except ValueError as exc:
                    raise ParseError(
                        f"bad probability {parts[2]!r}",
                        path=path,
                        lineno=lineno,
                    ) from exc
                if not np.isfinite(prob) or prob <= 0.0 or prob > 1.0:
                    raise ParseError(
                        f"probability {parts[2]!r} outside (0, 1]",
                        path=path,
                        lineno=lineno,
                    )
            if parts[0] == parts[1]:
                if self._on_self_loop == "error":
                    raise ParseError(
                        f"self-loop on node {parts[0]!r}",
                        path=path,
                        lineno=lineno,
                    )
                self._stats.self_loops_dropped += 1
                continue
            self._u.append(self._intern(parts[0]))
            self._v.append(self._intern(parts[1]))
            if columns == 3:
                self._p.append(prob)
            self._stats.raw_edges += 1
            if len(self._u) >= self._chunk:
                self._flush()

    def _flush(self) -> None:
        if not self._u:
            return
        u = np.asarray(self._u, dtype=np.uint32)
        v = np.asarray(self._v, dtype=np.uint32)
        p = np.asarray(self._p, dtype=np.float64) if self._stats.columns == 3 else None
        self._writer.write(u, v, p)
        self._u.clear()
        self._v.clear()
        self._p.clear()

    def finish(self) -> None:
        self._flush()
        self._writer.close()
        labels = np.array(self._labels)
        np.save(self._staging / LABELS_NAME, labels)


def _spill_memmap(path: Path, dtype: str) -> np.ndarray:
    size = path.stat().st_size
    itemsize = np.dtype(dtype).itemsize
    count = size // itemsize
    if count == 0:
        return np.zeros(0, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="r", shape=(count,))


def _remap_int_labels(staging: Path, stats: ParseStats, chunk_edges: int) -> int:
    """Densify integer labels to sorted-order uint32 ids, streaming.

    Rewrites the int64 raw-label spill files in place with uint32 dense
    ids and saves the sorted label table as ``labels.npy``.
    """
    src_path = staging / SPILL_SOURCES
    tgt_path = staging / SPILL_TARGETS
    raw_u = _spill_memmap(src_path, "<i8")
    raw_v = _spill_memmap(tgt_path, "<i8")
    labels = np.zeros(0, dtype=np.int64)
    for lo in range(0, len(raw_u), chunk_edges):
        hi = min(lo + chunk_edges, len(raw_u))
        chunk = np.unique(np.concatenate([raw_u[lo:hi], raw_v[lo:hi]]))
        # Incremental sorted union keeps the table O(nodes) while the
        # spill stays on disk (the concatenate is bounded by the table).
        labels = np.union1d(labels, chunk)  # reprolint: disable=REP602
    if len(labels) > _MAX_NODES:
        raise ParseError(f"{len(labels)} distinct nodes exceed uint32 id space")
    for raw, path in ((raw_u, src_path), (raw_v, tgt_path)):
        dense_path = path.with_suffix(".dense")
        with open(dense_path, "wb") as out:
            for lo in range(0, len(raw), chunk_edges):
                hi = min(lo + chunk_edges, len(raw))
                dense = np.searchsorted(labels, raw[lo:hi]).astype(np.uint32)
                out.write(dense.tobytes())
        del raw
        os.replace(dense_path, path)
    np.save(staging / LABELS_NAME, labels)
    return int(len(labels))


# -- CSR assembly -------------------------------------------------------------


def _stable_counting_pass(
    key: np.ndarray,
    payloads: tuple[np.ndarray, ...],
    key_out: np.ndarray,
    payload_outs: tuple[np.ndarray, ...],
    num_nodes: int,
    chunk_edges: int,
) -> None:
    """One stable counting-sort pass of disk-backed arrays by ``key``.

    O(nodes) memory: a counter array plus fixed-size chunk buffers; the
    edge payloads live in memory-mapped scratch files.
    """
    counts = np.zeros(num_nodes, dtype=np.int64)
    for lo in range(0, len(key), chunk_edges):
        hi = min(lo + chunk_edges, len(key))
        counts += np.bincount(key[lo:hi], minlength=num_nodes)
    next_pos = np.zeros(num_nodes, dtype=np.int64)
    if num_nodes > 1:
        np.cumsum(counts[:-1], out=next_pos[1:])
    for lo in range(0, len(key), chunk_edges):
        hi = min(lo + chunk_edges, len(key))
        k = np.asarray(key[lo:hi])
        order = np.argsort(k, kind="stable")
        ks = k[order]
        run_start = np.searchsorted(ks, ks, side="left")
        pos = next_pos[ks] + (np.arange(len(ks), dtype=np.int64) - run_start)
        key_out[pos] = ks
        for src, dst in zip(payloads, payload_outs):
            dst[pos] = np.asarray(src[lo:hi])[order]
        next_pos += np.bincount(k, minlength=num_nodes)


def _scratch(staging: Path, name: str, dtype: str, count: int) -> np.ndarray:
    path = staging / name
    if count == 0:
        return np.zeros(0, dtype=dtype)
    mm = np.memmap(path, dtype=dtype, mode="w+", shape=(count,))
    return mm


def _iter_runs(
    s: np.ndarray, t: np.ndarray, p: np.ndarray | None, chunk_edges: int
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray, bool]]:
    """Yield per-chunk run structure over the (source, target)-sorted arcs.

    Each item is ``(s_chunk, t_chunk, p_chunk, run_starts, first_is_new)``
    where ``run_starts`` indexes the first arc of each duplicate run in
    the chunk and ``first_is_new`` is False when the chunk's first run
    continues the previous chunk's last one.
    """
    prev_key: int | None = None
    for lo in range(0, len(s), chunk_edges):
        hi = min(lo + chunk_edges, len(s))
        sc = np.asarray(s[lo:hi], dtype=np.uint64)
        tc = np.asarray(t[lo:hi], dtype=np.uint64)
        pc = np.asarray(p[lo:hi]) if p is not None else None
        keys = (sc << np.uint64(32)) | tc
        new_run = np.empty(len(keys), dtype=bool)
        new_run[0] = True
        np.not_equal(keys[1:], keys[:-1], out=new_run[1:])
        run_starts = np.flatnonzero(new_run)
        first_is_new = prev_key is None or int(keys[0]) != prev_key
        prev_key = int(keys[-1])
        yield sc, tc, pc, run_starts, first_is_new


def assemble_csr(
    staging: PathLike,
    *,
    num_nodes: int,
    has_probs: bool,
    on_duplicate: str = "first",
    chunk_edges: int = CHUNK_EDGES,
) -> AssembleStats:
    """Sort, deduplicate and freeze the spilled arcs into CSR columns.

    Writes ``indptr.npy`` (int64), ``targets.npy`` (int32) and — when the
    source file carried a probability column — ``probs.npy`` (float64)
    into ``staging``, then removes the spill and scratch files.
    """
    if on_duplicate not in _DUPLICATE_POLICIES:
        raise ValueError(
            f"on_duplicate must be one of {_DUPLICATE_POLICIES}, got {on_duplicate!r}"
        )
    staging = Path(staging)
    s_in = _spill_memmap(staging / SPILL_SOURCES, "<u4")
    t_in = _spill_memmap(staging / SPILL_TARGETS, "<u4")
    p_in = _spill_memmap(staging / SPILL_PROBS, "<f8") if has_probs else None
    m = len(s_in)

    maybe_fire("data.parse", key="sort-by-target")
    s_a = _scratch(staging, "scratch_s_a.bin", "<u4", m)
    t_a = _scratch(staging, "scratch_t_a.bin", "<u4", m)
    p_a = _scratch(staging, "scratch_p_a.bin", "<f8", m) if has_probs else None
    pay_in: tuple[np.ndarray, ...] = (s_in,) if p_in is None else (s_in, p_in)
    pay_a: tuple[np.ndarray, ...] = (s_a,) if p_a is None else (s_a, p_a)
    _stable_counting_pass(t_in, pay_in, t_a, pay_a, num_nodes, chunk_edges)

    maybe_fire("data.parse", key="sort-by-source")
    s_b = _scratch(staging, "scratch_s_b.bin", "<u4", m)
    t_b = _scratch(staging, "scratch_t_b.bin", "<u4", m)
    p_b = _scratch(staging, "scratch_p_b.bin", "<f8", m) if has_probs else None
    pay_a2: tuple[np.ndarray, ...] = (t_a,) if p_a is None else (t_a, p_a)
    pay_b: tuple[np.ndarray, ...] = (t_b,) if p_b is None else (t_b, p_b)
    _stable_counting_pass(s_a, pay_a2, s_b, pay_b, num_nodes, chunk_edges)

    maybe_fire("data.parse", key="dedup")
    # Count pass: arcs kept after collapsing duplicate runs.
    kept = 0
    for _sc, _tc, _pc, run_starts, first_is_new in _iter_runs(s_b, t_b, p_b, chunk_edges):
        kept += len(run_starts) - (0 if first_is_new else 1)
    stats = AssembleStats(kept_edges=kept, duplicate_edges=m - kept)
    if on_duplicate == "error" and stats.duplicate_edges:
        dup = _first_duplicate(s_b, t_b, chunk_edges)
        raise ParseError(
            f"duplicate arc ({dup[0]}, {dup[1]}) "
            f"({stats.duplicate_edges} duplicates total; pass a dedup policy)"
        )

    targets_out = np.lib.format.open_memmap(
        staging / "targets.npy", mode="w+", dtype=np.int32, shape=(kept,)
    )
    probs_out = None
    counts = np.zeros(num_nodes, dtype=np.int64)
    try:
        if has_probs:
            probs_out = np.lib.format.open_memmap(
                staging / "probs.npy", mode="w+", dtype=np.float64, shape=(kept,)
            )
        write_at = 0
        carry_p = 0.0
        for sc, tc, pc, run_starts, first_is_new in _iter_runs(
            s_b, t_b, p_b, chunk_edges
        ):
            run_s = sc[run_starts].astype(np.int64)
            run_t = tc[run_starts].astype(np.int64)
            run_p = None
            if pc is not None:
                if on_duplicate == "max":
                    run_p = np.maximum.reduceat(pc, run_starts)
                else:
                    run_p = pc[run_starts]
            emit_from = 0
            if not first_is_new:
                # The chunk's first run continues the previous chunk's last
                # arc, which was already emitted; fold its probability in.
                emit_from = 1
                if run_p is not None and on_duplicate == "max":
                    merged = max(carry_p, float(run_p[0]))
                    probs_out[write_at - 1] = merged
                    carry_p = merged
            if len(run_starts) > emit_from:
                out_s = run_s[emit_from:]
                out_t = run_t[emit_from:]
                n_out = len(out_s)
                targets_out[write_at : write_at + n_out] = out_t.astype(np.int32)
                if run_p is not None:
                    probs_out[write_at : write_at + n_out] = run_p[emit_from:]
                    carry_p = float(run_p[-1])
                counts += np.bincount(out_s, minlength=num_nodes)
                write_at += n_out
        if write_at != kept:
            raise AssertionError(f"dedup wrote {write_at} arcs, counted {kept}")
        targets_out.flush()
        if probs_out is not None:
            probs_out.flush()
    finally:
        # Release the mappings on error too, or a failed assemble could
        # leave locked, partially written staging files behind.
        del targets_out, probs_out

    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    np.save(staging / "indptr.npy", indptr)
    _cleanup_scratch(staging, has_probs)
    return stats


def _first_duplicate(
    s: np.ndarray, t: np.ndarray, chunk_edges: int
) -> tuple[int, int]:
    for sc, tc, _pc, run_starts, first_is_new in _iter_runs(s, t, None, chunk_edges):
        dup_mask = np.ones(len(sc), dtype=bool)
        dup_mask[run_starts] = False
        if not first_is_new:
            dup_mask[0] = True
        idx = np.flatnonzero(dup_mask)
        if len(idx):
            i = int(idx[0])
            return int(sc[i]), int(tc[i])
    raise AssertionError("no duplicate found despite duplicate count")


def _cleanup_scratch(staging: Path, has_probs: bool) -> None:
    names = [
        SPILL_SOURCES,
        SPILL_TARGETS,
        "scratch_s_a.bin",
        "scratch_t_a.bin",
        "scratch_s_b.bin",
        "scratch_t_b.bin",
    ]
    if has_probs:
        names += [SPILL_PROBS, "scratch_p_a.bin", "scratch_p_b.bin"]
    for name in names:
        try:
            os.remove(staging / name)
        except FileNotFoundError:
            pass
