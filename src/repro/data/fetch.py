"""Checksummed, resumable download cache with an offline fixture fallback.

Layout (everything under the *data root* — ``REPRO_DATA_DIR`` or
``./data``)::

    <root>/cache/<source>/<filename>          completed, digest-verified
    <root>/cache/<source>/<filename>.part     partial download (resumable)
    <root>/cache/<source>/<filename>.sha256   trust-on-first-use record
    <root>/ingested/<dataset>/                ingested datasets (see ingest)

Contract:

* a completed cache file is only ever produced by *verify then atomic
  rename*, so a crash mid-download leaves a ``.part`` that the next
  fetch resumes with an HTTP ``Range`` request;
* downloads are size-bounded by the manifest's ``max_bytes`` (and an
  optional tighter CLI bound) — an over-budget stream is aborted, not
  trusted;
* sources with a pinned SHA-256 are verified against it; unpinned
  sources are trust-on-first-use, recorded in a ``.sha256`` sidecar and
  enforced on every later fetch;
* ``offline=True`` (or a source with no URL, or a network failure on a
  source that has a fixture) materialises the deterministic bundled
  fixture instead and verifies it against the digest pinned in
  ``sources.json`` — so CI never depends on the network.

The ``data.fetch`` fault site fires before the final rename; a ``torn``
plan persists half the payload into the ``.part`` file, which the next
fetch detects (digest mismatch) and rewrites.
"""

from __future__ import annotations

import os
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from repro.data.errors import FetchError, NetworkUnavailableError
from repro.data.fixtures import render_fixture
from repro.data.sources import SourceSpec, get_source
from repro.runtime.faults import faulty_write_bytes, maybe_fire
from repro.store.fingerprint import digest_file

PathLike = Union[str, os.PathLike]

#: Environment variable naming the data root; default is ``./data``.
DATA_ROOT_ENV = "REPRO_DATA_DIR"

_DOWNLOAD_CHUNK = 1 << 16


def data_root(root: PathLike | None = None) -> Path:
    """Resolve the data root: explicit argument, env var, or ``./data``."""
    if root is not None:
        return Path(root)
    env = os.environ.get(DATA_ROOT_ENV)
    return Path(env) if env else Path("data")


def cache_dir(source: str, root: PathLike | None = None) -> Path:
    return data_root(root) / "cache" / source


def ingest_root(root: PathLike | None = None) -> Path:
    return data_root(root) / "ingested"


@dataclass(frozen=True)
class FetchResult:
    """Where a source landed and how it got there."""

    source: str
    path: Path
    sha256: str
    num_bytes: int
    cached: bool
    offline_fixture: bool
    resumed: bool


def _recorded_digest(spec: SourceSpec, sidecar: Path) -> str | None:
    if spec.sha256 is not None:
        return spec.sha256
    if sidecar.exists():
        return sidecar.read_text(encoding="utf-8").strip()
    return None


def _finalise(
    spec: SourceSpec,
    part: Path,
    dest: Path,
    sidecar: Path,
    expected: str | None,
    *,
    offline_fixture: bool,
    resumed: bool,
) -> FetchResult:
    """Verify the staged payload and commit it atomically."""
    actual = digest_file(part)
    if expected is not None and actual != expected:
        part.unlink()
        raise FetchError(
            f"source {spec.name!r}: digest mismatch — expected {expected}, "
            f"got {actual}; the partial file was discarded, re-run fetch"
        )
    maybe_fire("data.fetch", key=spec.name)
    if expected is None:
        sidecar.write_text(actual + "\n", encoding="utf-8")
    os.replace(part, dest)
    return FetchResult(
        source=spec.name,
        path=dest,
        sha256=actual,
        num_bytes=dest.stat().st_size,
        cached=False,
        offline_fixture=offline_fixture,
        resumed=resumed,
    )


def _materialise_fixture(spec: SourceSpec, directory: Path) -> FetchResult:
    dest = directory / spec.fixture.filename
    sidecar = dest.with_name(dest.name + ".sha256")
    expected = spec.fixture.sha256
    if dest.exists():
        actual = digest_file(dest)
        if actual == expected:
            return FetchResult(
                source=spec.name,
                path=dest,
                sha256=actual,
                num_bytes=dest.stat().st_size,
                cached=True,
                offline_fixture=True,
                resumed=False,
            )
        dest.unlink()
    payload = render_fixture(spec.name, gz=spec.gz, columns=spec.columns)
    part = dest.with_name(dest.name + ".part")
    # Torn-write injection point: a "torn" plan persists half the fixture.
    faulty_write_bytes(part, payload, site="data.fetch", key=spec.name)
    return _finalise(
        spec, part, dest, sidecar, expected, offline_fixture=True, resumed=False
    )


def _download(
    spec: SourceSpec,
    directory: Path,
    *,
    max_bytes: int | None,
    timeout: float,
) -> FetchResult:
    dest = directory / spec.filename
    part = dest.with_name(dest.name + ".part")
    sidecar = dest.with_name(dest.name + ".sha256")
    bound = min(spec.max_bytes, max_bytes) if max_bytes else spec.max_bytes
    have = part.stat().st_size if part.exists() else 0
    resumed = have > 0
    headers = {"User-Agent": "repro-data-fetch/1.0"}
    if have:
        headers["Range"] = f"bytes={have}-"
    request = urllib.request.Request(spec.url, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status = getattr(response, "status", 200)
            mode = "ab" if have and status == 206 else "wb"
            if mode == "wb":
                have = 0
                resumed = False
            with open(part, mode) as out:
                total = have
                while True:
                    chunk = response.read(_DOWNLOAD_CHUNK)
                    if not chunk:
                        break
                    total += len(chunk)
                    if total > bound:
                        raise FetchError(
                            f"source {spec.name!r}: download exceeded the "
                            f"{bound}-byte bound; refusing to continue"
                        )
                    out.write(chunk)
    except FetchError:
        raise
    except (urllib.error.URLError, TimeoutError, ConnectionError, OSError) as exc:
        raise NetworkUnavailableError(
            f"source {spec.name!r}: download failed ({exc}); partial bytes "
            "are kept for resume, or pass --offline for the bundled fixture"
        ) from exc
    expected = _recorded_digest(spec, sidecar)
    return _finalise(
        spec, part, dest, sidecar, expected, offline_fixture=False, resumed=resumed
    )


def fetch_source(
    name: str,
    *,
    root: PathLike | None = None,
    offline: bool = False,
    force: bool = False,
    max_bytes: int | None = None,
    timeout: float = 30.0,
) -> FetchResult:
    """Fetch one source into the cache; see the module docstring contract."""
    spec = get_source(name)
    directory = cache_dir(name, root)
    directory.mkdir(parents=True, exist_ok=True)
    use_fixture = offline or spec.offline_only
    dest = directory / (spec.fixture.filename if use_fixture else spec.filename)
    sidecar = dest.with_name(dest.name + ".sha256")
    if dest.exists() and not force:
        expected = (
            spec.fixture.sha256 if use_fixture else _recorded_digest(spec, sidecar)
        )
        actual = digest_file(dest)
        if expected is None or actual == expected:
            return FetchResult(
                source=name,
                path=dest,
                sha256=actual,
                num_bytes=dest.stat().st_size,
                cached=True,
                offline_fixture=use_fixture,
                resumed=False,
            )
        dest.unlink()
    elif dest.exists():
        dest.unlink()
    if use_fixture:
        return _materialise_fixture(spec, directory)
    try:
        return _download(spec, directory, max_bytes=max_bytes, timeout=timeout)
    except NetworkUnavailableError:
        # Network down but a deterministic stand-in exists: fall back so
        # automated pipelines keep moving; callers can tell from the flag.
        return _materialise_fixture(spec, directory)
