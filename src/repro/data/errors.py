"""Error hierarchy of the real-dataset ETL subsystem.

Everything the pipeline can refuse — an unknown source, a failed or
over-budget download, a malformed edge-list line, a torn or tampered
ingest manifest — derives from :class:`DataError`, which the CLI treats
as an *operational* failure (one line on stderr, exit code 2) exactly
like the :class:`~repro.store.errors.StoreError` family.  Genuine bugs
still traceback.
"""

from __future__ import annotations


class DataError(Exception):
    """Base class for every ETL-pipeline refusal."""


class SourceUnknownError(DataError):
    """A dataset-source name is not in the pinned sources manifest."""


class FetchError(DataError):
    """A download failed, exceeded its size bound, or failed checksum."""


class NetworkUnavailableError(FetchError):
    """Transport-level download failure (DNS, refused, timeout).

    The one fetch failure that legitimately falls back to the bundled
    offline fixture; integrity failures (checksum, size bound) never do.
    """


class ParseError(DataError):
    """An edge-list file violates the SNAP-format contract.

    Carries the path and (when known) the 1-based line number so fuzzed
    malformed inputs produce actionable one-line diagnostics.
    """

    def __init__(self, message: str, *, path: str | None = None, lineno: int | None = None) -> None:
        prefix = ""
        if path is not None:
            prefix = f"{path}: "
        if lineno is not None:
            prefix += f"line {lineno}: "
        super().__init__(prefix + message)
        self.path = path
        self.lineno = lineno


class ManifestError(DataError):
    """A ``dataset.json`` ingest manifest is missing, torn or tampered.

    Mirrors the refusal semantics of the shard tier's ``partition.json``:
    a dataset whose manifest cannot be checksum-validated is never served
    to the index builder.
    """
