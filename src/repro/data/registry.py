"""Discovery surface for ingested datasets.

Ingested datasets live under ``<data root>/ingested/<name>/`` (see
:mod:`repro.data.ingest`).  This module enumerates them, loads them with
manifest verification, and summarises their provenance — it is the glue
:mod:`repro.datasets.registry` uses to let ``load_setting("epinions-W")``
resolve an ingested graph by name next to the synthetic settings.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro.data.errors import ManifestError
from repro.data.fetch import ingest_root
from repro.data.ingest import MANIFEST_NAME, load_graph, read_manifest

PathLike = Union[str, os.PathLike]


def dataset_dir(name: str, root: PathLike | None = None) -> Path:
    """Where dataset ``name`` lives (whether or not it exists yet)."""
    return ingest_root(root) / name


def list_ingested(root: PathLike | None = None) -> list[str]:
    """Sorted names of committed datasets under the data root.

    Only directories holding a ``dataset.json`` count; ``.staging``
    leftovers from a crashed ingest are invisible here (``repro data
    ingest`` resumes them).
    """
    base = ingest_root(root)
    if not base.is_dir():
        return []
    return sorted(
        entry.name
        for entry in base.iterdir()
        if entry.is_dir() and (entry / MANIFEST_NAME).exists()
    )


def has_dataset(name: str, root: PathLike | None = None) -> bool:
    return (dataset_dir(name, root) / MANIFEST_NAME).exists()


def load_dataset(name: str, *, root: PathLike | None = None, verify: str = "fast"):
    """Load one ingested dataset as ``(ProbabilisticDigraph, manifest)``.

    Raises :class:`ManifestError` when the name is unknown (listing what
    *is* available) or when the manifest/array checksums refuse.
    """
    directory = dataset_dir(name, root)
    if not (directory / MANIFEST_NAME).exists():
        available = list_ingested(root)
        hint = (
            f"ingested datasets: {available}"
            if available
            else "no datasets have been ingested yet — run 'repro data ingest'"
        )
        raise ManifestError(f"no ingested dataset named {name!r}; {hint}")
    manifest = read_manifest(directory)
    graph = load_graph(directory, verify=verify)
    return graph, manifest


def describe_dataset(name: str, root: PathLike | None = None) -> dict:
    """Provenance summary of an ingested dataset (manifest subset)."""
    manifest = read_manifest(dataset_dir(name, root))
    return {
        "name": manifest["name"],
        "source": manifest["source"],
        "graph": manifest["graph"],
        "assignment": manifest["assignment"],
        "parse": manifest["parse"],
        "tool_version": manifest["tool_version"],
        "manifest_digest": manifest["manifest_digest"],
    }
