"""Bundled SNAP-format fixtures: the offline, deterministic fetch path.

Real SNAP downloads need the network; CI (and the acceptance gate) must
not.  Every entry in ``sources.json`` therefore carries a *fixture*: a
small graph rendered in exactly the shape of the real file — tab
separators, ``#`` comment header, duplicate arcs, self-loops,
non-contiguous node ids, gzip when the source is gzipped — generated
deterministically from the source name, so its SHA-256 can be pinned in
the manifest and verified on every materialisation.

Rather than shipping megabytes of opaque bytes, the fixture *generator*
is the bundled artefact; ``repro data fetch --offline`` renders it on
demand and checks the pinned digest, which also proves the generator has
not drifted.
"""

from __future__ import annotations

import gzip
import zlib

import numpy as np

from repro.utils.rng import SeedLike, derive_rng

#: Default shape of a rendered fixture (overridden per source below).
_DEFAULT_NODES = 900
_DEFAULT_EDGES = 5200

#: Per-source fixture shapes: (nodes, target arcs).  Sized so an ingest →
#: index build → serve smoke completes in seconds while still exercising
#: multi-chunk spills when tests shrink the chunk size.
FIXTURE_SHAPES: dict[str, tuple[int, int]] = {
    "epinions": (1100, 7400),
    "slashdot": (900, 6200),
    "twitter": (800, 5600),
    "digg": (700, 4400),
    "flixster": (700, 4000),
    "nethept": (600, 3600),
    "fixture-social": (400, 2600),
}

#: Fraction of arcs duplicated / rendered as self-loops, and the stride of
#: lines that get a CRLF terminator (SNAP exports from Windows tooling do).
_DUP_FRACTION = 0.02
_LOOP_FRACTION = 0.005
_CRLF_STRIDE = 97


def fixture_seed(source: str) -> int:
    """Stable per-source seed (crc32 is stable across processes)."""
    return zlib.crc32(f"repro-fixture-{source}".encode("utf-8"))


def render_fixture_text(source: str, seed: SeedLike = None, columns: int = 2) -> str:
    """The fixture's uncompressed text; deterministic in ``(source, seed)``."""
    nodes, arcs = FIXTURE_SHAPES.get(source, (_DEFAULT_NODES, _DEFAULT_EDGES))
    rng = derive_rng(fixture_seed(source) if seed is None else seed)

    # Skewed out-degrees (squaring a uniform biases toward low ids) over
    # non-contiguous raw labels, so ingestion must really remap ids.
    u = np.floor(nodes * rng.random(arcs) ** 2).astype(np.int64)
    v = rng.integers(0, nodes, size=arcs)
    keep = u != v
    u, v = u[keep], v[keep]
    n_dups = max(1, int(len(u) * _DUP_FRACTION))
    u = np.concatenate([u, u[:n_dups]])
    v = np.concatenate([v, v[:n_dups]])
    n_loops = max(1, int(len(u) * _LOOP_FRACTION))
    loops = rng.integers(0, nodes, size=n_loops)
    u = np.concatenate([u, loops])
    v = np.concatenate([v, loops])
    raw_u = u * 3 + 11
    raw_v = v * 3 + 11
    order = rng.permutation(len(raw_u))
    raw_u, raw_v = raw_u[order], raw_v[order]

    probs = None
    if columns == 3:
        probs = np.round(0.01 + 0.99 * rng.random(len(raw_u)), 6)

    lines = [
        f"# Directed graph (each unordered pair of nodes is saved once): {source}",
        "# Deterministic offline fixture in SNAP export format.",
        f"# Nodes: {nodes} Edges: {len(raw_u)}",
        "# FromNodeId\tToNodeId" + ("\tProb" if columns == 3 else ""),
    ]
    for i in range(len(raw_u)):
        if columns == 3:
            line = f"{raw_u[i]}\t{raw_v[i]}\t{probs[i]:.6f}"
        else:
            line = f"{raw_u[i]}\t{raw_v[i]}"
        if (i + 1) % _CRLF_STRIDE == 0:
            line += "\r"
        lines.append(line)
    return "\n".join(lines) + "\n"


def render_fixture(source: str, *, gz: bool, columns: int = 2, seed: SeedLike = None) -> bytes:
    """Fixture file bytes for ``source`` (gzip with pinned mtime when asked)."""
    text = render_fixture_text(source, seed=seed, columns=columns)
    payload = text.encode("utf-8")
    if gz:
        return gzip.compress(payload, compresslevel=9, mtime=0)
    return payload
