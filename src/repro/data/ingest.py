"""Ingest: raw edge-list file → registered, checksummed dataset directory.

An ingested dataset is a directory under ``<root>/ingested/<name>/``::

    indptr.npy     int64[n + 1]   CSR row pointers
    targets.npy    int32[m]       CSR arc heads
    probs.npy      float64[m]     arc probabilities (assignment output)
    labels.npy                    dense id -> original file label
    dataset.json                  self-checksummed ingest manifest

The pipeline runs in three deterministic, individually resumable stages
inside a ``<name>.staging`` directory:

1. **parse**  — streaming spill + label remap (:mod:`repro.data.parse`);
2. **assemble** — counting-sort, dedup policy, CSR freeze;
3. **assign** — probability assignment (weighted-cascade ``1/indeg(v)``
   in one streaming indegree pass, fixed-``p``, trivalency, or the
   file's own probability column), mirroring the semantics of
   :mod:`repro.problearn.assign`.

A journal (``ingest.journal.json``) records each completed stage keyed
by a *parameter fingerprint* (source digest + every option), so a
crashed ingest rerun with the same arguments skips finished stages and
— because every stage is deterministic — commits a manifest whose
digest is bit-identical to an uninterrupted run.  The final
``dataset.json`` is written through the ``data.commit`` torn-write
fault site and carries a self-checksum plus per-array digests; loading
refuses a torn or tampered manifest exactly like the shard tier refuses
a bad ``partition.json``.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

import repro
from repro.data.errors import DataError, ManifestError
from repro.data.fetch import FetchResult, fetch_source, ingest_root
from repro.data.parse import (
    CHUNK_EDGES,
    LABELS_NAME,
    assemble_csr,
    parse_edge_file,
)
from repro.graph.digraph import ProbabilisticDigraph
from repro.runtime.faults import faulty_write_bytes
from repro.store.fingerprint import digest_file, digest_text
from repro.utils.rng import derive_rng
from repro.utils.validation import check_probability

PathLike = Union[str, os.PathLike]

MANIFEST_NAME = "dataset.json"
JOURNAL_NAME = "ingest.journal.json"
MANIFEST_MAGIC = "repro-dataset"
MANIFEST_VERSION = 1

ASSIGNMENTS = ("wc", "fixed", "trivalency", "file")

#: TRIVALENCY values, as in :func:`repro.problearn.assign.assign_trivalency`.
_TRIVALENCY_VALUES = (0.1, 0.01, 0.001)

_ARRAY_NAMES = ("indptr.npy", "targets.npy", "probs.npy", LABELS_NAME)


@dataclass(frozen=True)
class IngestReport:
    """What one ingest produced, with per-stage wall-clock timings."""

    name: str
    directory: Path
    manifest: dict
    timings: dict[str, float]
    resumed_stages: tuple[str, ...]


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _params_fingerprint(
    source_sha: str,
    *,
    assignment: str,
    p: float,
    seed: int,
    on_duplicate: str,
    on_self_loop: str,
) -> str:
    return digest_text(
        _canonical(
            {
                "source_sha": source_sha,
                "assignment": assignment,
                "p": p,
                "seed": seed,
                "on_duplicate": on_duplicate,
                "on_self_loop": on_self_loop,
                "manifest_version": MANIFEST_VERSION,
            }
        )
    )


def _read_journal(path: Path) -> dict | None:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _write_journal(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=2), encoding="utf-8")
    os.replace(tmp, path)


def default_dataset_name(source: str, assignment: str) -> str:
    """``epinions`` + ``wc`` → ``epinions-W``, following the paper's suffixes."""
    suffix = {"wc": "W", "fixed": "F", "trivalency": "T", "file": "P"}[assignment]
    return f"{source}-{suffix}"


def ingest(
    source: str,
    *,
    name: str | None = None,
    file: PathLike | None = None,
    root: PathLike | None = None,
    assignment: str = "wc",
    p: float = 0.1,
    seed: int = 20160626,
    on_duplicate: str = "first",
    on_self_loop: str = "drop",
    offline: bool = False,
    force: bool = False,
    chunk_edges: int = CHUNK_EDGES,
) -> IngestReport:
    """Fetch (if needed), parse, assign and commit one dataset.

    ``source`` names a ``sources.json`` entry unless ``file`` points at a
    local edge list (then ``source`` is only provenance text).  Re-running
    after a crash with the same arguments resumes from the journal.
    """
    import time

    if assignment not in ASSIGNMENTS:
        raise ValueError(f"assignment must be one of {ASSIGNMENTS}, got {assignment!r}")
    if assignment == "fixed":
        check_probability(p, "p")
    dataset = name or default_dataset_name(source, assignment)
    out_dir = ingest_root(root) / dataset
    if out_dir.exists():
        if not force:
            raise DataError(
                f"dataset {dataset!r} already ingested at {out_dir}; pass "
                "force=True (CLI: --force) to replace it"
            )
        shutil.rmtree(out_dir)

    timings: dict[str, float] = {}
    begin = time.monotonic()
    if file is not None:
        src_path = Path(file)
        if not src_path.exists():
            raise DataError(f"edge-list file {src_path} does not exist")
        fetch: FetchResult | None = None
        source_sha = digest_file(src_path)
    else:
        fetch = fetch_source(source, root=root, offline=offline)
        src_path = fetch.path
        source_sha = fetch.sha256
    timings["fetch_s"] = time.monotonic() - begin

    staging = out_dir.with_name(out_dir.name + ".staging")
    staging.mkdir(parents=True, exist_ok=True)
    journal_path = staging / JOURNAL_NAME
    fingerprint = _params_fingerprint(
        source_sha,
        assignment=assignment,
        p=p,
        seed=seed,
        on_duplicate=on_duplicate,
        on_self_loop=on_self_loop,
    )
    journal = _read_journal(journal_path)
    if not journal or journal.get("params") != fingerprint:
        # Fresh run (or the parameters changed): start from a clean slate.
        shutil.rmtree(staging)
        staging.mkdir(parents=True)
        journal = {"params": fingerprint, "stages": {}}
        _write_journal(journal_path, journal)
    stages: dict = journal["stages"]
    resumed = tuple(sorted(stages))

    if "parse" not in stages:
        begin = time.monotonic()
        result = parse_edge_file(
            src_path, staging, on_self_loop=on_self_loop, chunk_edges=chunk_edges
        )
        timings["parse_s"] = time.monotonic() - begin
        stages["parse"] = {
            "stats": result.stats.to_mapping(),
            "num_nodes": result.num_nodes,
            "has_probs": result.has_probs,
        }
        _write_journal(journal_path, journal)
    parse_info = stages["parse"]

    if "assemble" not in stages:
        begin = time.monotonic()
        astats = assemble_csr(
            staging,
            num_nodes=int(parse_info["num_nodes"]),
            has_probs=bool(parse_info["has_probs"]),
            on_duplicate=on_duplicate,
            chunk_edges=chunk_edges,
        )
        timings["assemble_s"] = time.monotonic() - begin
        stages["assemble"] = astats.to_mapping()
        _write_journal(journal_path, journal)

    if "assign" not in stages:
        begin = time.monotonic()
        _assign_probabilities(
            staging,
            assignment=assignment,
            p=p,
            seed=seed,
            has_file_probs=bool(parse_info["has_probs"]),
            num_nodes=int(parse_info["num_nodes"]),
            chunk_edges=chunk_edges,
        )
        timings["assign_s"] = time.monotonic() - begin
        stages["assign"] = {"method": assignment}
        _write_journal(journal_path, journal)

    begin = time.monotonic()
    manifest = _build_manifest(
        staging,
        dataset=dataset,
        source=source,
        source_file=src_path.name,
        source_sha=source_sha,
        offline_fixture=bool(fetch and fetch.offline_fixture),
        assignment=assignment,
        p=p,
        seed=seed,
        on_duplicate=on_duplicate,
        on_self_loop=on_self_loop,
        parse_info=parse_info,
        assemble_info=stages["assemble"],
    )
    body = _canonical({k: v for k, v in manifest.items() if k != "manifest_digest"})
    manifest["manifest_digest"] = digest_text(body)
    payload = json.dumps(manifest, sort_keys=True, indent=2) + "\n"
    faulty_write_bytes(
        staging / MANIFEST_NAME, payload.encode("utf-8"), site="data.commit", key=dataset
    )
    journal_path.unlink()
    out_dir.parent.mkdir(parents=True, exist_ok=True)
    os.replace(staging, out_dir)
    timings["commit_s"] = time.monotonic() - begin
    timings["total_s"] = sum(timings.values())
    return IngestReport(
        name=dataset,
        directory=out_dir,
        manifest=manifest,
        timings=timings,
        resumed_stages=resumed,
    )


def _assign_probabilities(
    staging: Path,
    *,
    assignment: str,
    p: float,
    seed: int,
    has_file_probs: bool,
    num_nodes: int,
    chunk_edges: int,
) -> None:
    """Write ``probs.npy`` for the chosen assignment, streaming.

    Semantics mirror :mod:`repro.problearn.assign`: ``wc`` is
    ``1 / indeg(v)`` (computed in one streaming pass over the final
    targets), ``fixed`` is a constant, ``trivalency`` draws each arc
    uniformly from {0.1, 0.01, 0.001} with a seeded generator, ``file``
    keeps the parsed probability column.
    """
    targets = np.load(staging / "targets.npy", mmap_mode="r")
    m = len(targets)
    if assignment == "file":
        if not has_file_probs:
            raise DataError(
                "assignment 'file' needs a 3-column edge list with a "
                "probability column"
            )
        return  # probs.npy was produced by the assemble stage
    probs = np.lib.format.open_memmap(
        staging / "probs.npy", mode="w+", dtype=np.float64, shape=(m,)
    )
    try:
        if assignment == "wc":
            indeg = np.zeros(num_nodes, dtype=np.int64)
            for lo in range(0, m, chunk_edges):
                hi = min(lo + chunk_edges, m)
                indeg += np.bincount(targets[lo:hi], minlength=num_nodes)
            for lo in range(0, m, chunk_edges):
                hi = min(lo + chunk_edges, m)
                probs[lo:hi] = 1.0 / indeg[targets[lo:hi]]
        elif assignment == "fixed":
            probs[:] = p
        else:  # trivalency
            rng = derive_rng(seed)
            values = np.asarray(_TRIVALENCY_VALUES, dtype=np.float64)
            for lo in range(0, m, chunk_edges):
                hi = min(lo + chunk_edges, m)
                probs[lo:hi] = values[rng.integers(0, len(values), size=hi - lo)]
        probs.flush()
    finally:
        # Release the mapping on error too, so a failed assignment never
        # leaves a locked, partially written probs.npy in staging.
        del probs


def _build_manifest(
    staging: Path,
    *,
    dataset: str,
    source: str,
    source_file: str,
    source_sha: str,
    offline_fixture: bool,
    assignment: str,
    p: float,
    seed: int,
    on_duplicate: str,
    on_self_loop: str,
    parse_info: dict,
    assemble_info: dict,
) -> dict:
    indptr = np.load(staging / "indptr.npy", mmap_mode="r")
    arrays = {}
    for array_name in _ARRAY_NAMES:
        path = staging / array_name
        if not path.exists():
            raise DataError(f"ingest stage output {array_name} is missing")
        arrays[array_name] = {
            "sha256": digest_file(path),
            "bytes": path.stat().st_size,
        }
    assignment_record: dict = {"method": assignment}
    if assignment == "fixed":
        assignment_record["p"] = p
    if assignment == "trivalency":
        assignment_record["seed"] = seed
        assignment_record["values"] = list(_TRIVALENCY_VALUES)
    return {
        "magic": MANIFEST_MAGIC,
        "format_version": MANIFEST_VERSION,
        "name": dataset,
        "source": {
            "name": source,
            "file": source_file,
            "sha256": source_sha,
            "offline_fixture": offline_fixture,
        },
        "parse": {
            **parse_info["stats"],
            **assemble_info,
            "on_duplicate": on_duplicate,
            "on_self_loop": on_self_loop,
        },
        "graph": {
            "num_nodes": int(len(indptr) - 1),
            "num_edges": int(indptr[-1]),
        },
        "assignment": assignment_record,
        "tool_version": repro.__version__,
        "arrays": arrays,
    }


def read_manifest(directory: PathLike) -> dict:
    """Parse and checksum-validate ``<directory>/dataset.json``.

    Raises :class:`ManifestError` for every flavour of unusable manifest
    — missing, torn mid-write, tampered, or wrong version.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise ManifestError(
            f"{directory} has no {MANIFEST_NAME} — not an ingested dataset "
            "(or an ingest that crashed before commit; re-run 'repro data ingest')"
        ) from exc
    except (OSError, UnicodeDecodeError) as exc:
        raise ManifestError(f"cannot read {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ManifestError(
            f"{path} is not valid JSON (torn write?): {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("magic") != MANIFEST_MAGIC:
        raise ManifestError(f"{path} is not a dataset manifest (bad magic)")
    if payload.get("format_version") != MANIFEST_VERSION:
        raise ManifestError(
            f"unsupported dataset manifest version {payload.get('format_version')!r}"
        )
    recorded = payload.get("manifest_digest")
    if not isinstance(recorded, str):
        raise ManifestError(f"{path} is missing its self-checksum")
    body = _canonical({k: v for k, v in payload.items() if k != "manifest_digest"})
    if digest_text(body) != recorded:
        raise ManifestError(
            f"{path} checksum mismatch — the manifest was corrupted or edited"
        )
    return payload


def verify_dataset(directory: PathLike, *, full: bool = True) -> dict:
    """Check a dataset directory against its manifest.

    ``full`` re-hashes every array file; otherwise only sizes are
    compared.  Returns the validated manifest.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    for array_name, info in sorted(manifest["arrays"].items()):
        path = directory / array_name
        if not path.exists():
            raise ManifestError(f"dataset array {array_name} is missing")
        if path.stat().st_size != int(info["bytes"]):
            raise ManifestError(
                f"dataset array {array_name} is {path.stat().st_size} bytes, "
                f"manifest records {info['bytes']}"
            )
        if full and digest_file(path) != info["sha256"]:
            raise ManifestError(
                f"dataset array {array_name} fails its recorded checksum"
            )
    return manifest


def load_graph(directory: PathLike, *, verify: str = "fast") -> ProbabilisticDigraph:
    """Memory-map an ingested dataset as a :class:`ProbabilisticDigraph`.

    ``verify`` is ``"fast"`` (manifest checksum + file sizes) or
    ``"full"`` (re-hash every array).
    """
    directory = Path(directory)
    verify_dataset(directory, full=verify == "full")
    indptr = np.load(directory / "indptr.npy", mmap_mode="r")
    targets = np.load(directory / "targets.npy", mmap_mode="r")
    probs = np.load(directory / "probs.npy", mmap_mode="r")
    return ProbabilisticDigraph._from_csr_unchecked(
        int(len(indptr) - 1), indptr, targets, probs
    )


def load_labels(directory: PathLike) -> np.ndarray:
    """The dense-id → original-label sidecar of an ingested dataset."""
    return np.load(Path(directory) / LABELS_NAME)
