"""The pinned dataset-source manifest (``sources.json``).

Each entry names one real network the paper (or the related SNAP-scale
literature) evaluates on: its download URL, pinned SHA-256 (``null``
means trust-on-first-use — the digest is recorded beside the cached file
on first fetch and enforced afterwards), a licence note, the file shape
(gzip, column count) and a size bound, plus the pinned digest of its
deterministic offline fixture (see :mod:`repro.data.fixtures`).

The manifest is data, not code, so growing the catalogue is a JSON edit;
this module only parses and validates it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.data.errors import DataError, SourceUnknownError

SOURCES_FILE = Path(__file__).with_name("sources.json")

_cache: dict[str, "SourceSpec"] | None = None


@dataclass(frozen=True)
class FixtureSpec:
    """Pinned offline stand-in for one source."""

    filename: str
    sha256: str


@dataclass(frozen=True)
class SourceSpec:
    """One pinned dataset source."""

    name: str
    url: str | None
    filename: str
    sha256: str | None
    license: str
    gz: bool
    columns: int
    max_bytes: int
    fixture: FixtureSpec

    @property
    def offline_only(self) -> bool:
        return self.url is None


def _parse_entry(name: str, raw: dict) -> SourceSpec:
    try:
        fixture = FixtureSpec(
            filename=str(raw["fixture"]["filename"]),
            sha256=str(raw["fixture"]["sha256"]),
        )
        return SourceSpec(
            name=name,
            url=raw["url"],
            filename=str(raw["filename"]),
            sha256=raw["sha256"],
            license=str(raw["license"]),
            gz=bool(raw["gz"]),
            columns=int(raw["columns"]),
            max_bytes=int(raw["max_bytes"]),
            fixture=fixture,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed sources.json entry {name!r}: {exc}") from exc


def load_sources() -> dict[str, SourceSpec]:
    """Parse and cache the manifest; returns ``name -> SourceSpec``."""
    global _cache
    if _cache is None:
        try:
            payload = json.loads(SOURCES_FILE.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DataError(f"cannot read sources manifest: {exc}") from exc
        if not isinstance(payload, dict) or not isinstance(payload.get("sources"), dict):
            raise DataError("sources.json must hold a 'sources' mapping")
        _cache = {
            name: _parse_entry(name, raw)
            for name, raw in sorted(payload["sources"].items())
        }
    return _cache


def list_sources() -> list[str]:
    """Sorted source names."""
    return sorted(load_sources())


def get_source(name: str) -> SourceSpec:
    """Look up one source; unknown names list the catalogue."""
    sources = load_sources()
    spec = sources.get(name)
    if spec is None:
        raise SourceUnknownError(
            f"unknown dataset source {name!r}; choose from {sorted(sources)}"
        )
    return spec
