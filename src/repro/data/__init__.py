"""Real-dataset ETL: checksummed fetch, streaming ingest, registry.

Pipeline (all offline-capable, all deterministic)::

    repro data fetch <source> [--offline]     # cached, digest-verified
    repro data ingest <source> [--assignment] # streaming parse -> CSR -> probs
    repro data info [<name>]                  # catalogue + provenance
    repro data verify <name> [--full]         # manifest + array checksums

Ingested datasets are named like paper settings (``epinions-W``) and
resolve through :func:`repro.datasets.registry.load_setting`, so every
downstream surface — ``repro index build --dataset``, the shard tier,
the serve fleet, the jobs service — runs on real SNAP-scale graphs the
same way it runs on the synthetic families.
"""

from repro.data.errors import (
    DataError,
    FetchError,
    ManifestError,
    NetworkUnavailableError,
    ParseError,
    SourceUnknownError,
)
from repro.data.fetch import FetchResult, data_root, fetch_source, ingest_root
from repro.data.ingest import (
    IngestReport,
    default_dataset_name,
    ingest,
    load_graph,
    load_labels,
    read_manifest,
    verify_dataset,
)
from repro.data.registry import (
    dataset_dir,
    describe_dataset,
    has_dataset,
    list_ingested,
    load_dataset,
)
from repro.data.sources import get_source, list_sources, load_sources

__all__ = [
    "DataError",
    "FetchError",
    "FetchResult",
    "IngestReport",
    "ManifestError",
    "NetworkUnavailableError",
    "ParseError",
    "SourceUnknownError",
    "data_root",
    "dataset_dir",
    "default_dataset_name",
    "describe_dataset",
    "fetch_source",
    "get_source",
    "has_dataset",
    "ingest",
    "ingest_root",
    "list_ingested",
    "list_sources",
    "load_dataset",
    "load_graph",
    "load_labels",
    "load_sources",
    "read_manifest",
    "verify_dataset",
]
