"""Validated description of one seed-selection job.

A :class:`JobSpec` is the *pure input* of a job: together with the served
index's content digest it fully determines the selection sequence (the
resume purity contract — see :mod:`repro.jobs.select`).  Everything a
client can pass is validated here into clean
:class:`~repro.serve.errors.BadRequest` refusals, so no malformed payload
reaches a worker, and the canonical JSON form feeds both the journal's
``submit`` record and the idempotency digest.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass

from repro.serve.errors import BadRequest
from repro.store.fingerprint import digest_text

#: Job types the service runs, and the selection engine behind each.
MODELS = ("greedy_tc", "celfpp", "ris", "cost_aware", "stability")

#: Hard cap on the requested seed-set size (also bounds journal growth).
MAX_K = 4096

#: Hard cap on the RIS sample budget a job may request.
MAX_RR_SETS = 200_000

#: Idempotency keys: printable, bounded, no whitespace or control bytes.
IDEMPOTENCY_KEY_PATTERN = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


def check_idempotency_key(raw: object) -> str | None:
    """Validate a client idempotency key (``None`` passes through)."""
    if raw is None:
        return None
    if not isinstance(raw, str) or not IDEMPOTENCY_KEY_PATTERN.match(raw):
        raise BadRequest(
            "idempotency key must be 1-128 characters from [A-Za-z0-9._:-], "
            f"got {raw!r}"
        )
    return raw


def _require_int(payload: dict, name: str, *, lo: int, hi: int) -> int:
    raw = payload[name]
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise BadRequest(f"'{name}' must be an integer, got {raw!r}")
    if raw < lo:
        raise BadRequest(f"'{name}' must be >= {lo}, got {raw}")
    if raw > hi:
        raise BadRequest(f"'{name}' must be <= {hi}, got {raw}")
    return raw


def _optional_positive_float(payload: dict, name: str) -> float | None:
    raw = payload.get(name)
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise BadRequest(f"'{name}' must be a number, got {raw!r}")
    value = float(raw)
    if not math.isfinite(value) or value <= 0:
        raise BadRequest(f"'{name}' must be a positive finite number, got {raw}")
    return value


def _node_costs(payload: dict, num_nodes: int) -> tuple[tuple[int, float], ...]:
    raw = payload.get("node_costs")
    if raw is None:
        return ()
    if not isinstance(raw, dict):
        raise BadRequest(
            "'node_costs' must be a JSON object mapping node id to cost, "
            'e.g. {"0": 1.5}'
        )
    costs: dict[int, float] = {}
    for key, value in raw.items():
        try:
            node = int(key)
        except (TypeError, ValueError):
            raise BadRequest(
                f"node-cost keys must be integer node ids, got {key!r}"
            ) from None
        if not 0 <= node < num_nodes:
            raise BadRequest(
                f"node-cost key {node} is outside the served universe "
                f"0..{num_nodes - 1}"
            )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BadRequest(f"cost of node {node} must be a number, got {value!r}")
        cost = float(value)
        if not math.isfinite(cost) or cost <= 0:
            raise BadRequest(
                f"cost of node {node} must be a positive finite number, got {value}"
            )
        costs[node] = cost
    return tuple(sorted(costs.items()))


@dataclass(frozen=True)
class JobSpec:
    """One validated seed-selection request.

    ``deadline`` is a wall-clock budget in seconds measured from
    submission; it only ever *aborts* a job (``failed-permanent``), never
    alters which seeds are selected, so it is deliberately not part of the
    purity contract's inputs.  Every other field is.
    """

    model: str
    k: int
    budget: float | None = None
    node_costs: tuple[tuple[int, float], ...] = ()
    deadline: float | None = None
    num_rr_sets: int = 2000
    rr_seed: int = 20160626
    max_cost: float | None = None

    @classmethod
    def from_payload(cls, payload: object, num_nodes: int) -> "JobSpec":
        """Validate a client JSON body into a spec (or raise BadRequest)."""
        if not isinstance(payload, dict):
            raise BadRequest(
                'job body must be a JSON object, e.g. {"model": "greedy_tc", "k": 10}'
            )
        unknown = sorted(
            set(payload)
            - {
                "model", "k", "budget", "node_costs", "deadline",
                "num_rr_sets", "rr_seed", "max_cost", "idempotency_key",
            }
        )
        if unknown:
            raise BadRequest(f"unknown job field(s): {', '.join(unknown)}")
        model = payload.get("model")
        if model not in MODELS:
            raise BadRequest(
                f"'model' must be one of {', '.join(MODELS)}, got {model!r}"
            )
        if "k" not in payload:
            raise BadRequest("'k' is required")
        k = _require_int(payload, "k", lo=1, hi=MAX_K)
        if k > num_nodes:
            raise BadRequest(
                f"k={k} exceeds the number of served nodes ({num_nodes})"
            )
        budget = _optional_positive_float(payload, "budget")
        if model == "cost_aware" and budget is None:
            raise BadRequest("the cost_aware model requires a positive 'budget'")
        deadline = _optional_positive_float(payload, "deadline")
        max_cost_raw = payload.get("max_cost")
        max_cost: float | None = None
        if max_cost_raw is not None:
            if isinstance(max_cost_raw, bool) or not isinstance(
                max_cost_raw, (int, float)
            ):
                raise BadRequest(f"'max_cost' must be a number, got {max_cost_raw!r}")
            max_cost = float(max_cost_raw)
            if not math.isfinite(max_cost) or max_cost < 0:
                raise BadRequest(
                    f"'max_cost' must be a non-negative finite number, got {max_cost_raw}"
                )
        num_rr_sets = 2000
        if "num_rr_sets" in payload:
            num_rr_sets = _require_int(payload, "num_rr_sets", lo=1, hi=MAX_RR_SETS)
        rr_seed = 20160626
        if "rr_seed" in payload:
            rr_seed = _require_int(payload, "rr_seed", lo=0, hi=2**63 - 1)
        return cls(
            model=str(model),
            k=k,
            budget=budget,
            node_costs=_node_costs(payload, num_nodes),
            deadline=deadline,
            num_rr_sets=num_rr_sets,
            rr_seed=rr_seed,
            max_cost=max_cost,
        )

    def to_payload(self) -> dict:
        """The spec as a plain JSON-serialisable mapping (journal form)."""
        return {
            "model": self.model,
            "k": self.k,
            "budget": self.budget,
            "node_costs": {str(node): cost for node, cost in self.node_costs},
            "deadline": self.deadline,
            "num_rr_sets": self.num_rr_sets,
            "rr_seed": self.rr_seed,
            "max_cost": self.max_cost,
        }

    @classmethod
    def from_mapping(cls, raw: dict) -> "JobSpec":
        """Rehydrate a spec from its journal form (trusted, checksummed)."""
        return cls(
            model=str(raw["model"]),
            k=int(raw["k"]),
            budget=None if raw.get("budget") is None else float(raw["budget"]),
            node_costs=tuple(
                sorted((int(k), float(v)) for k, v in raw.get("node_costs", {}).items())
            ),
            deadline=(
                None if raw.get("deadline") is None else float(raw["deadline"])
            ),
            num_rr_sets=int(raw.get("num_rr_sets", 2000)),
            rr_seed=int(raw.get("rr_seed", 20160626)),
            max_cost=(
                None if raw.get("max_cost") is None else float(raw["max_cost"])
            ),
        )

    def digest(self) -> str:
        """Content digest of the spec — the idempotency comparison key."""
        return digest_text(
            json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))
        )
