"""Client-visible failures of the seed-selection job service.

Every job error extends the :class:`~repro.serve.errors.ServeError`
hierarchy so the existing HTTP routing layer maps it to a clean JSON error
document — the job endpoints inherit the "either correct or refused"
contract of the query service.  The job-specific refusal statuses:

====  ==========================  ==========================================
code  exception                   cause
====  ==========================  ==========================================
404   :class:`JobNotFound`        unknown job id (or jobs disabled)
409   :class:`JobConflict`        idempotency-key reuse with a different spec
409   :class:`JobNotDone`         result requested before the job is done
429   :class:`JobQueueFull`       admission control: the job queue is full
500   :class:`JobJournalCorrupt`  a job journal failed its self-checksum
====  ==========================  ==========================================
"""

from __future__ import annotations

from repro.serve.errors import RetryableError, ServeError


class JobNotFound(ServeError):
    """No job with the requested id exists in the jobs directory."""

    status = 404


class JobConflict(ServeError):
    """An idempotency key was reused with a *different* job spec.

    A retry of the same submission is answered with the original job; a
    key collision with different parameters is a client bug and must not
    silently run either spec.
    """

    status = 409


class JobNotDone(ServeError):
    """``GET /jobs/{id}/result`` before the job reached ``done``.

    The error message names the job's current state so clients can decide
    between polling on (queued/running) and giving up (cancelled/failed).
    """

    status = 409


class JobQueueFull(RetryableError):
    """Admission control refused the submission: ``max_queued`` jobs are
    already waiting.  Carries ``Retry-After`` like every retryable
    refusal."""

    status = 429


class JobJournalCorrupt(ServeError):
    """A job journal line before the tail failed its self-checksum.

    A torn *tail* is the expected crash artefact and is repaired silently;
    corruption anywhere else means the journal cannot be trusted and the
    job is refused explicitly rather than resumed wrongly."""

    status = 500
