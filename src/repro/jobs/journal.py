"""Self-checksummed append-only journal of one seed-selection job.

Each job owns a directory with a single ``journal.jsonl``: one JSON record
per line, every line carrying its own content digest (the same checksum
discipline as :mod:`repro.runtime.checkpoint`).  The journal is the job's
*only* source of truth — state is never held anywhere a SIGKILL can lose
it.  The record sequence is the state machine:

``submit``
    the validated spec, submission wall-time, idempotency key and the
    served index's content digest (resume refuses to mix indexes);
``attempt``
    a worker (re)started — carries the attempt number;
``step``
    one committed greedy iteration: ``(iteration, node, gain, spent)``.
    The resume purity contract makes this the checkpoint: a selection
    restarted from any committed step prefix re-derives the identical
    remaining sequence;
``result`` / ``cancelled`` / ``failed``
    terminal records (``failed`` carries ``retryable``; a retryable
    failure may be followed by another ``attempt``).

Crash-consistency contract: a crash (or an injected ``jobs.commit`` torn
write) may leave *at most* one truncated line at the tail, which
:meth:`JobJournal.recover` silently discards and truncates away.  A
checksum failure anywhere else — or garbage *followed by* valid records —
means the journal cannot be trusted and raises
:class:`~repro.jobs.errors.JobJournalCorrupt` instead of resuming wrongly.

Single-writer discipline: exactly one process appends at a time — the
worker while it is alive, the manager only after the worker is dead (and
after :meth:`recover`, so a post-mortem record never concatenates onto a
torn half-line).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable

from repro.jobs.errors import JobJournalCorrupt
from repro.runtime.errors import InjectedFault
from repro.runtime.faults import CRASH_EXIT_CODE, take_fault
from repro.store.fingerprint import digest_text

JOURNAL_NAME = "journal.jsonl"

#: Injection site fired on every journal append (``torn`` persists half
#: the encoded line — the canonical crash-mid-commit artefact).
FAULT_SITE_COMMIT = "jobs.commit"

#: Terminal record types (nothing but a respawned ``attempt`` may follow
#: a retryable ``failed``; nothing at all follows the other three).
TERMINAL_TYPES = ("result", "cancelled", "failed")


def encode_record(record: dict) -> str:
    """One journal line: canonical JSON with an embedded self-checksum."""
    payload = dict(record)
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    payload["checksum"] = digest_text(body)
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def decode_line(line: str) -> dict | None:
    """Parse and checksum-validate one line; ``None`` if it is invalid."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    recorded = payload.pop("checksum", None)
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if recorded is None or digest_text(body) != recorded:
        return None
    return payload


class JobJournal:
    """The append-only record stream of one job directory."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self._root = Path(os.fspath(directory))

    @property
    def directory(self) -> Path:
        return self._root

    @property
    def path(self) -> Path:
        return self._root / JOURNAL_NAME

    def exists(self) -> bool:
        return self.path.is_file()

    # -- reading -------------------------------------------------------------

    def _scan(self) -> tuple[list[dict], int, bool]:
        """Parse the journal: ``(records, valid_byte_length, torn_tail)``.

        ``valid_byte_length`` is where the durable prefix ends — the
        truncation point when a torn tail follows it.  Raises
        :class:`JobJournalCorrupt` on any invalid line that is *not* the
        final fragment.
        """
        path = self.path
        if not path.is_file():
            return [], 0, False
        data = path.read_bytes()
        records: list[dict] = []
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                # Unterminated tail: the classic torn write.  Even a fully
                # valid record missing only its newline is a torn commit —
                # the writer died mid-line, so the commit never completed.
                return records, offset, True
            line = data[offset : newline].decode("utf-8", errors="replace")
            record = decode_line(line)
            if record is None:
                if newline == len(data) - 1:
                    # Invalid but newline-terminated final line: treat as
                    # a torn tail only if it cannot be parsed at all —
                    # a *complete* JSON record failing its checksum is
                    # corruption, not tearing.
                    try:
                        parsed = json.loads(line)
                    except json.JSONDecodeError:
                        return records, offset, True
                    raise JobJournalCorrupt(
                        f"{path}: final record fails its self-checksum "
                        f"({parsed if isinstance(parsed, dict) else line!r})"
                    )
                raise JobJournalCorrupt(
                    f"{path}: record at byte {offset} is invalid but is "
                    "followed by further records — the journal was "
                    "corrupted, refusing to resume from it"
                )
            records.append(record)
            offset = newline + 1
        return records, offset, False

    def replay(self) -> list[dict]:
        """Read-only tolerant read: the durable records, torn tail dropped.

        Safe to call concurrently with a live writer (status polling of a
        running job): the scan only trusts checksummed complete lines.
        """
        records, _, _ = self._scan()
        return records

    def recover(self) -> list[dict]:
        """Repair the journal in place and return its durable records.

        Truncates a torn tail so the next append starts on a clean line
        boundary.  Must be called by whoever takes over writing (a
        respawned worker, or the manager post-mortem).
        """
        records, valid_length, torn = self._scan()
        if torn:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_length)
        return records

    # -- writing -------------------------------------------------------------

    def append(self, record: dict, *, attempt: int | None = None) -> None:
        """Durably commit one record (fault site ``jobs.commit``).

        ``attempt`` is the worker attempt number and is passed *explicitly*
        to the injector: occurrence counters are per-process, so a torn
        plan with ``attempts=(0,)`` keyed on a counter would re-fire in
        every respawned worker — an infinite crash loop.  With the real
        attempt number the tear fires exactly once.
        """
        self._root.mkdir(parents=True, exist_ok=True)
        line = encode_record(record)
        spec = take_fault(
            FAULT_SITE_COMMIT, key=str(record.get("type")), attempt=attempt
        )
        if spec is not None and spec.kind == "torn":
            with open(self.path, "ab") as handle:
                handle.write(line.encode()[: len(line) // 2])
                handle.flush()
                os.fsync(handle.fileno())
            raise InjectedFault(
                f"injected torn journal commit at {FAULT_SITE_COMMIT!r} "
                f"(type={record.get('type')!r}, attempt={attempt})"
            )
        if spec is not None:
            if spec.kind == "crash":
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFault(
                f"injected {spec.kind} at {FAULT_SITE_COMMIT!r} "
                f"(type={record.get('type')!r}, attempt={attempt})"
            )
        with open(self.path, "ab") as handle:
            handle.write(line.encode())
            handle.flush()
            os.fsync(handle.fileno())


# -- state derivation ---------------------------------------------------------


def committed_steps(records: Iterable[dict]) -> list[dict]:
    """The committed ``step`` records in iteration order (the checkpoint)."""
    steps = [r for r in records if r.get("type") == "step"]
    steps.sort(key=lambda r: int(r["iteration"]))
    return steps


def summarize(records: list[dict]) -> dict:
    """Collapse a record stream into the client-visible job status.

    Returns a mapping with ``state`` ∈ {queued, running, done, cancelled,
    failed-retryable, failed-permanent}, the committed step count, the
    attempt count, and — when terminal — the result or failure detail.
    """
    view: dict = {
        "state": "queued",
        "steps": 0,
        "attempts": 0,
        "spec": None,
        "submitted_at": None,
        "result": None,
        "error": None,
        "finished_at": None,
    }
    for record in records:
        kind = record.get("type")
        if kind == "submit":
            view["spec"] = record.get("spec")
            view["submitted_at"] = record.get("submitted_at")
            view["idempotency_key"] = record.get("idempotency_key")
            view["index_digest"] = record.get("index_digest")
        elif kind == "attempt":
            view["attempts"] = int(record.get("attempt", 0)) + 1
            view["state"] = "running"
            view["error"] = None
        elif kind == "step":
            view["steps"] = max(view["steps"], int(record["iteration"]) + 1)
        elif kind == "result":
            view["state"] = "done"
            view["result"] = {
                key: record[key]
                for key in ("seeds", "gains", "coverage", "spent", "estimate")
                if key in record
            }
            view["finished_at"] = record.get("at")
        elif kind == "cancelled":
            view["state"] = "cancelled"
            view["error"] = record.get("reason")
            view["finished_at"] = record.get("at")
        elif kind == "failed":
            retryable = bool(record.get("retryable"))
            view["state"] = "failed-retryable" if retryable else "failed-permanent"
            view["error"] = record.get("reason")
            if not retryable:
                view["finished_at"] = record.get("at")
    return view
