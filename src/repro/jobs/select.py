"""Checkpointable stepwise selection engines behind the job service.

Every job model is driven through the same three-call contract:

* ``resume(steps)`` — replay a committed step prefix from the journal;
* ``step()`` — commit exactly one greedy iteration (returns the journal
  ``step`` record fields, or ``None`` when selection is finished);
* ``finalize()`` — the terminal ``result`` record fields.

**Resume purity contract.**  At each iteration a lazy greedy selection is
the unique exact argmax of ``(-gain, tie, rank)`` over the unselected
candidates given the covered/oracle state — cached heap gains are
submodular *upper bounds*, so heap internals only change how many
re-evaluations happen, never which candidate wins, and the node-id rank
makes the order total.  A selection resumed from a journaled prefix
therefore re-derives the identical remaining sequence: mark the prefix
selected, rebuild the heap with every cached gain stale (``stamp``/
``flag`` = ``-1``, forcing re-evaluation), continue.  RIS RR universes
are a pure function of ``(rr_seed, graph)``; the cost-aware
best-single-set fallback is a pure function of ``(family, budget)``
applied at :meth:`finalize` — both resume-safe by construction.
Deadlines and cancellation only ever *abort* a job; they never feed the
argmax.
"""

from __future__ import annotations

import heapq
from typing import Mapping

import numpy as np

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.influence.celfpp import _Entry
from repro.influence.maxcover import _validate_family, ordered_keys
from repro.influence.ris import sample_rr_set
from repro.influence.spread import SpreadOracle
from repro.jobs.spec import JobSpec
from repro.utils.rng import SeedLike, derive_rng


class StepwiseMaxCover:
    """Lazy greedy max-cover, one committed selection per :meth:`step`.

    Mirrors :func:`repro.influence.maxcover.greedy_max_cover` selection
    for selection (same heap order ``(-gain, tie, rank)``, same tie
    semantics); only the evaluation schedule differs, which the purity
    contract proves is unobservable in the output.
    """

    def __init__(
        self,
        family: Mapping[int, np.ndarray],
        k: int,
        universe_size: int,
        priorities: Mapping[int, float] | None = None,
        estimate_scale: float = 1.0,
    ) -> None:
        self._family = _validate_family(family, universe_size)
        self._k = int(k)
        self._keys = ordered_keys(self._family)
        self._rank = {key: i for i, key in enumerate(self._keys)}
        if priorities is None:
            self._tie = {key: 0.0 for key in self._keys}
        else:
            self._tie = {
                key: -float(priorities.get(key, 0.0)) for key in self._keys
            }
        self._covered = np.zeros(universe_size, dtype=bool)
        self._scale = float(estimate_scale)
        self._selected: list[int] = []
        self._gains: list[float] = []
        self._coverage: list[float] = []
        self._heap: list[tuple[float, float, int, int]] | None = None

    def _commit(self, key: int) -> float:
        members = self._family[key]
        fresh = members[~self._covered[members]]
        self._covered[np.unique(fresh)] = True
        gain = float(np.unique(fresh).size)
        total = (self._coverage[-1] if self._coverage else 0.0) + gain
        self._selected.append(int(key))
        self._gains.append(gain)
        self._coverage.append(total)
        return gain

    def resume(self, steps: list[dict]) -> None:
        """Replay a committed prefix; gains are *recomputed*, not trusted."""
        if self._heap is not None or self._selected:
            raise RuntimeError("resume() must run before the first step()")
        for record in steps:
            self._commit(int(record["node"]))

    def _ensure_heap(self) -> None:
        if self._heap is not None:
            return
        chosen = set(self._selected)
        heap = []
        for key in self._keys:
            if key in chosen:
                continue
            # Full set size: a valid upper bound on the current marginal
            # gain whatever is covered.  stamp=-1 forces re-evaluation, so
            # a resumed heap and a live heap select identically.
            bound = float(np.unique(self._family[key]).size)
            heap.append((-bound, self._tie[key], self._rank[key], -1))
        heapq.heapify(heap)
        self._heap = heap

    def step(self) -> dict | None:
        if len(self._selected) >= min(self._k, len(self._keys)):
            return None
        self._ensure_heap()
        iteration = len(self._selected)
        heap = self._heap
        while heap:
            neg_gain, tie, rank, stamp = heapq.heappop(heap)
            key = self._keys[rank]
            if stamp == iteration:
                gain = self._commit(key)
                return {"iteration": iteration, "node": int(key), "gain": gain}
            members = self._family[key]
            gain = float(np.count_nonzero(~self._covered[np.unique(members)]))
            heapq.heappush(heap, (-gain, tie, rank, iteration))
        return None

    def finalize(self) -> dict:
        return {
            "seeds": list(self._selected),
            "gains": list(self._gains),
            "coverage": list(self._coverage),
            "estimate": (
                self._coverage[-1] * self._scale if self._coverage else 0.0
            ),
        }


class StepwiseCelfpp:
    """CELF++ over the index's sampled worlds, one selection per step.

    Mirrors :func:`repro.influence.celfpp.infmax_celfpp`; the heap ties by
    ``(-mg1, node_id)``, so equal exact gains always select the smallest
    node id — the determinism the resume contract needs.
    """

    def __init__(self, index: CascadeIndex, k: int) -> None:
        self._oracle = SpreadOracle(index)
        self._k = min(int(k), index.num_nodes)
        self._gains: list[float] = []
        self._spreads: list[float] = []
        self._last_seed = -1
        self._entries: dict[int, _Entry] | None = None
        self._heap: list[tuple[float, int]] | None = None

    def resume(self, steps: list[dict]) -> None:
        if self._heap is not None or self._oracle.seeds:
            raise RuntimeError("resume() must run before the first step()")
        for record in steps:
            node = int(record["node"])
            realized = self._oracle.add_seed(node)
            self._gains.append(realized)
            self._spreads.append(self._oracle.current_spread())
            self._last_seed = node

    def _ensure_heap(self) -> None:
        if self._heap is not None:
            return
        initial = self._oracle.initial_gains()
        chosen = set(self._oracle.seeds)
        self._entries = {}
        heap: list[tuple[float, int]] = []
        for v in range(self._oracle.index.num_nodes):
            if v in chosen:
                continue
            # sigma({v}) is an upper bound on gain(v | S) by submodularity;
            # flag=-1 forces a re-evaluation before any selection.
            self._entries[v] = _Entry(
                node=v,
                mg1=float(initial[v]),
                mg2=float(initial[v]),
                prev_best=-1,
                flag=-1,
            )
            heapq.heappush(heap, (-self._entries[v].mg1, v))
        self._heap = heap

    def step(self) -> dict | None:
        if len(self._gains) >= self._k:
            return None
        self._ensure_heap()
        heap, entries = self._heap, self._entries
        iteration = len(self._gains)
        chosen = set(self._oracle.seeds)
        while heap:
            neg_gain, node = heapq.heappop(heap)
            if node in chosen:
                continue  # duplicate heap copy of an already-selected node
            entry = entries[node]
            if -neg_gain != entry.mg1:
                continue  # stale heap copy
            if entry.flag == iteration:
                realized = self._oracle.add_seed(node)
                self._gains.append(realized)
                self._spreads.append(self._oracle.current_spread())
                self._last_seed = node
                return {
                    "iteration": iteration,
                    "node": int(node),
                    "gain": realized,
                }
            if entry.prev_best == self._last_seed and entry.flag == iteration - 1:
                # CELF++ shortcut: mg2 is exact w.r.t. the current seed set.
                entry.mg1 = entry.mg2
                entry.prev_best = -1
            else:
                front = entries[heap[0][1]].node if heap else -1
                if front >= 0 and front != node and front not in chosen:
                    entry.mg1, entry.mg2 = self._oracle.marginal_gain_pair(
                        node, front
                    )
                    entry.prev_best = front
                else:
                    entry.mg1 = self._oracle.marginal_gain(node)
                    entry.mg2 = entry.mg1
                    entry.prev_best = -1
            entry.flag = iteration
            heapq.heappush(heap, (-entry.mg1, node))
        return None

    def finalize(self) -> dict:
        return {
            "seeds": list(self._oracle.seeds),
            "gains": list(self._gains),
            "coverage": list(self._spreads),
            "estimate": self._spreads[-1] if self._spreads else 0.0,
        }


class StepwiseBudgetedCover:
    """Cost-benefit greedy under a budget, with the best-single fallback.

    Mirrors :func:`repro.influence.maxcover.budgeted_greedy_max_cover`:
    each :meth:`step` commits the affordable candidate with the strictly
    best gain/cost ratio (ties keep the first key in node-id order); the
    constant-factor best-single-set comparison happens in
    :meth:`finalize` — a pure function of ``(family, budget)``, so a
    resumed job applies it identically.
    """

    def __init__(
        self,
        family: Mapping[int, np.ndarray],
        budget: float,
        universe_size: int,
        costs: Mapping[int, float],
        max_cost: float | None = None,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self._family = _validate_family(family, universe_size)
        self._keys = ordered_keys(self._family)
        self._costs = {key: float(costs.get(key, 1.0)) for key in self._keys}
        for key, cost in self._costs.items():
            if cost <= 0:
                raise ValueError(f"cost of node {key!r} must be positive")
        self._budget = float(budget)
        self._max_cost = None if max_cost is None else float(max_cost)
        self._covered = np.zeros(universe_size, dtype=bool)
        self._remaining = set(self._keys)
        self._selected: list[int] = []
        self._gains: list[float] = []
        self._coverage: list[float] = []
        self._spent = 0.0

    def _affordable(self, key: int, spent: float) -> bool:
        cost = self._costs[key]
        if self._max_cost is not None and cost > self._max_cost:
            return False
        return spent + cost <= self._budget

    def resume(self, steps: list[dict]) -> None:
        if self._selected:
            raise RuntimeError("resume() must run before the first step()")
        for record in steps:
            self._commit(int(record["node"]))

    def _commit(self, key: int) -> tuple[float, float]:
        members = np.unique(self._family[key])
        gain = float(np.count_nonzero(~self._covered[members]))
        self._covered[members] = True
        self._spent += self._costs[key]
        total = (self._coverage[-1] if self._coverage else 0.0) + gain
        self._remaining.discard(key)
        self._selected.append(int(key))
        self._gains.append(gain)
        self._coverage.append(total)
        return gain, self._spent

    def step(self) -> dict | None:
        best_key = None
        best_ratio = 0.0
        for key in self._keys:
            if key not in self._remaining or not self._affordable(key, self._spent):
                continue
            members = np.unique(self._family[key])
            gain = float(np.count_nonzero(~self._covered[members]))
            ratio = gain / self._costs[key]
            if ratio > best_ratio:
                best_ratio, best_key = ratio, key
        if best_key is None:
            return None
        iteration = len(self._selected)
        gain, spent = self._commit(best_key)
        return {
            "iteration": iteration,
            "node": int(best_key),
            "gain": gain,
            "spent": spent,
        }

    def finalize(self) -> dict:
        total = self._coverage[-1] if self._coverage else 0.0
        best_single = None
        best_single_gain = 0.0
        for key in self._keys:
            if self._affordable(key, 0.0):
                gain = float(np.unique(self._family[key]).size)
                if gain > best_single_gain:
                    best_single, best_single_gain = key, gain
        if best_single is not None and best_single_gain > total:
            return {
                "seeds": [int(best_single)],
                "gains": [best_single_gain],
                "coverage": [best_single_gain],
                "spent": self._costs[best_single],
                "estimate": best_single_gain,
            }
        return {
            "seeds": list(self._selected),
            "gains": list(self._gains),
            "coverage": list(self._coverage),
            "spent": self._spent,
            "estimate": total,
        }


# -- model wiring --------------------------------------------------------------


def sphere_family(index: CascadeIndex) -> dict[int, np.ndarray]:
    """Every node's typical-cascade sphere, seed included (Algorithm 3)."""
    computer = TypicalCascadeComputer(index, size_grid_ratio=1.15)
    family: dict[int, np.ndarray] = {}
    for node, sphere in computer.compute_all().items():
        members = np.asarray(sphere.members, dtype=np.int64)
        node = int(node)
        if members.size == 0 or not np.any(members == node):
            members = np.union1d(members, np.array([node], dtype=np.int64))
        family[node] = members
    return family


def rr_family(
    index: CascadeIndex, num_rr_sets: int, rr_seed: SeedLike
) -> dict[int, np.ndarray]:
    """The RIS coverage family — a pure function of ``(rr_seed, graph)``."""
    graph = index.graph
    n = graph.num_nodes
    rng = derive_rng(rr_seed)
    member_lists: dict[int, list[int]] = {v: [] for v in range(n)}
    for rr_id in range(num_rr_sets):
        target = int(rng.integers(0, n))
        for v in sample_rr_set(graph, target, rng):
            member_lists[int(v)].append(rr_id)
    return {v: np.asarray(ids, dtype=np.int64) for v, ids in member_lists.items()}


def build_selection(spec: JobSpec, index: CascadeIndex):
    """The stepwise engine for ``spec`` over ``index``.

    Pure: the same (spec, index) always yields an engine producing the
    same selection sequence — the premise of crash-resume bit parity.
    """
    n = index.num_nodes
    if spec.model == "celfpp":
        return StepwiseCelfpp(index, spec.k)
    if spec.model == "ris":
        family = rr_family(index, spec.num_rr_sets, spec.rr_seed)
        return StepwiseMaxCover(
            family,
            spec.k,
            spec.num_rr_sets,
            estimate_scale=n / spec.num_rr_sets,
        )
    family = sphere_family(index)
    if spec.model == "cost_aware":
        return StepwiseBudgetedCover(
            family,
            spec.budget,
            n,
            dict(spec.node_costs),
            max_cost=spec.max_cost,
        )
    mean_sizes = index.all_cascade_sizes().mean(axis=1)
    if spec.model == "greedy_tc":
        # InfMax_TC tie-break: prefer genuinely influential nodes.
        priorities = {v: float(mean_sizes[v]) for v in family}
    elif spec.model == "stability":
        # Stability-aware variant (He & Kempe's concern): break coverage
        # ties toward nodes whose sampled cascade size is *reliable* —
        # risk-adjusted priority mean - std over the index's worlds.
        std_sizes = index.all_cascade_sizes().std(axis=1)
        priorities = {
            v: float(mean_sizes[v] - std_sizes[v]) for v in family
        }
    else:  # pragma: no cover - spec validation forbids this
        raise ValueError(f"unknown job model {spec.model!r}")
    return StepwiseMaxCover(family, spec.k, n, priorities=priorities)


def run_to_completion(spec: JobSpec, index: CascadeIndex) -> dict:
    """Uninterrupted serial reference: the exact result a durable job must
    reproduce through any number of crashes and resumes."""
    selection = build_selection(spec, index)
    while selection.step() is not None:
        pass
    return selection.finalize()
