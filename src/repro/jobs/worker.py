"""The job worker: runs one attempt of one seed-selection job.

Runnable two ways with identical semantics:

* **process mode** — ``python -m repro.jobs.worker <job_dir> --index
  <path> --attempt N``: a supervised subprocess the manager respawns on
  crash; this is the mode the chaos gate SIGKILLs.  Exit codes:
  ``0`` (a terminal record was journalled), ``3`` (retryable failure —
  nothing terminal journalled, the manager repairs the journal and may
  respawn), ``4`` (permanent refusal: corrupt journal or index
  mismatch), ``87`` (injected crash).
* **thread mode** — the manager calls :func:`run_attempt` directly in a
  runner thread (unit tests, single-process deployments).

The attempt protocol, same both ways: recover the journal (truncating a
torn tail), journal an ``attempt`` record, rebuild the selection from the
committed ``step`` prefix (resume purity contract — bit-identical to an
uninterrupted run), then loop: honour cancellation (the ``cancel`` marker
file, checked at step boundaries) and the wall-clock deadline, commit one
``step`` record per iteration, and finish with a ``result`` record.
Fault sites: ``jobs.step`` fires before each iteration, ``jobs.result``
before the result commit, ``jobs.commit`` inside every journal append —
all keyed with the *explicit* attempt number so plans target one attempt,
not every respawn.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Callable, Union

from repro.cascades.index import CascadeIndex
from repro.jobs.errors import JobJournalCorrupt
from repro.jobs.journal import JobJournal, committed_steps
from repro.jobs.select import build_selection
from repro.jobs.spec import JobSpec
from repro.runtime.faults import maybe_fire
from repro.store.provenance import IndexProvenance

#: Exit status of a retryable worker failure (manager may respawn).
RETRYABLE_EXIT = 3

#: Exit status of a permanent refusal (manager must not respawn).
PERMANENT_EXIT = 4

#: Marker file whose existence requests cooperative cancellation.
CANCEL_MARKER = "cancel"

IndexLike = Union[CascadeIndex, str, os.PathLike]


class PermanentJobError(Exception):
    """The job can never succeed as journalled (e.g. index mismatch)."""


def cancel_requested(job_dir: str | os.PathLike) -> bool:
    return (Path(os.fspath(job_dir)) / CANCEL_MARKER).is_file()


def request_cancel(job_dir: str | os.PathLike) -> None:
    """Atomically drop the cancellation marker (idempotent)."""
    marker = Path(os.fspath(job_dir)) / CANCEL_MARKER
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.touch()


def run_attempt(
    job_dir: str | os.PathLike,
    index: IndexLike,
    attempt: int,
    *,
    clock: Callable[[], float] = time.time,
) -> str:
    """Run one attempt to completion; returns the terminal outcome.

    Returns ``"done"``, ``"cancelled"`` or ``"failed"`` after journalling
    the matching terminal record.  Raises :class:`PermanentJobError` /
    :class:`~repro.jobs.errors.JobJournalCorrupt` for permanent refusals
    and lets any other exception propagate as a *retryable* failure — in
    that case nothing terminal was journalled (the journal may even hold
    a torn tail) and the caller owns repair and respawn policy.
    """
    journal = JobJournal(job_dir)
    records = journal.recover()
    submit = next((r for r in records if r.get("type") == "submit"), None)
    if submit is None:
        raise PermanentJobError(f"{journal.path} has no submit record")
    spec = JobSpec.from_mapping(submit["spec"])
    job_id = str(submit.get("job_id", Path(os.fspath(job_dir)).name))
    submitted_at = float(submit.get("submitted_at", clock()))

    if not isinstance(index, CascadeIndex):
        index = CascadeIndex.load(index)
    recorded_digest = submit.get("index_digest")
    if recorded_digest is not None:
        live_digest = IndexProvenance.from_index(index).content_digest
        if live_digest != recorded_digest:
            raise PermanentJobError(
                f"job {job_id} was submitted against index "
                f"{recorded_digest}, the worker loaded {live_digest} — "
                "refusing to resume across different indexes"
            )

    journal.append(
        {"type": "attempt", "attempt": int(attempt), "at": clock()},
        attempt=attempt,
    )

    def over_deadline() -> bool:
        return (
            spec.deadline is not None
            and clock() - submitted_at > spec.deadline
        )

    selection = build_selection(spec, index)
    selection.resume(committed_steps(records))

    while True:
        if cancel_requested(job_dir):
            journal.append(
                {
                    "type": "cancelled",
                    "reason": "cancellation requested",
                    "at": clock(),
                },
                attempt=attempt,
            )
            return "cancelled"
        if over_deadline():
            journal.append(
                {
                    "type": "failed",
                    "retryable": False,
                    "reason": (
                        f"deadline of {spec.deadline}s exceeded "
                        f"(submitted at {submitted_at})"
                    ),
                    "at": clock(),
                },
                attempt=attempt,
            )
            return "failed"
        maybe_fire("jobs.step", key=job_id, attempt=attempt)
        step = selection.step()
        if step is None:
            break
        journal.append(
            {"type": "step", **step, "at": clock()}, attempt=attempt
        )

    maybe_fire("jobs.result", key=job_id, attempt=attempt)
    journal.append(
        {"type": "result", **selection.finalize(), "at": clock()},
        attempt=attempt,
    )
    return "done"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs.worker",
        description="Run one attempt of a journalled seed-selection job.",
    )
    parser.add_argument("job_dir", help="job directory holding journal.jsonl")
    parser.add_argument(
        "--index", required=True, help="index store path the job runs over"
    )
    parser.add_argument(
        "--attempt", type=int, default=0, help="attempt number (for resume)"
    )
    args = parser.parse_args(argv)
    try:
        outcome = run_attempt(args.job_dir, args.index, args.attempt)
    except (PermanentJobError, JobJournalCorrupt) as exc:
        print(f"[jobs] permanent failure: {exc}", file=sys.stderr)
        return PERMANENT_EXIT
    except Exception as exc:  # noqa: BLE001 - retryable by contract
        print(
            f"[jobs] attempt {args.attempt} failed "
            f"({type(exc).__name__}: {exc})",
            file=sys.stderr,
        )
        return RETRYABLE_EXIT
    print(f"[jobs] attempt {args.attempt}: {outcome}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
