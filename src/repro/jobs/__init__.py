"""Durable, crash-resumable seed-selection jobs over a served index.

The subsystem in one breath: a :class:`~repro.jobs.manager.JobManager`
admits validated :class:`~repro.jobs.spec.JobSpec` submissions into
per-job :class:`~repro.jobs.journal.JobJournal` directories, schedules
them onto supervised workers (:mod:`repro.jobs.worker`) that drive the
checkpointable selection engines of :mod:`repro.jobs.select` one
journalled greedy iteration at a time, and — because each selection is a
pure function of ``(spec, index)`` with deterministic node-id tie-breaks
— resumes any crashed job bit-identically from its last committed step.
HTTP wiring lives in :mod:`repro.serve.handlers`; client-visible errors
in :mod:`repro.jobs.errors`.
"""

from repro.jobs.errors import (
    JobConflict,
    JobJournalCorrupt,
    JobNotDone,
    JobNotFound,
    JobQueueFull,
)
from repro.jobs.journal import JobJournal, committed_steps, summarize
from repro.jobs.select import build_selection, run_to_completion
from repro.jobs.spec import MODELS, JobSpec


def __getattr__(name: str):
    # JobManager is loaded lazily so that ``python -m repro.jobs.worker``
    # does not pre-import the worker module through the manager before
    # runpy executes it as __main__ (which trips a RuntimeWarning).
    if name == "JobManager":
        from repro.jobs.manager import JobManager

        return JobManager
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "JobConflict",
    "JobJournal",
    "JobJournalCorrupt",
    "JobManager",
    "JobNotDone",
    "JobNotFound",
    "JobQueueFull",
    "JobSpec",
    "MODELS",
    "build_selection",
    "committed_steps",
    "run_to_completion",
    "summarize",
]
