"""The durable job manager: admission, scheduling, supervision, recovery.

:class:`JobManager` owns a jobs directory (one subdirectory per job, each
holding a :class:`~repro.jobs.journal.JobJournal`) and drives every job
through the journalled state machine::

    queued -> running -> {done, cancelled, failed-retryable, failed-permanent}

The journal is the only durable state; everything in memory — the queue,
the running set, the idempotency map — is rebuilt from the journals at
startup, which is what makes the manager itself crash-safe: a SIGKILLed
server restarts, scans the jobs directory, re-enqueues every non-terminal
job and resumes it from its last committed step.

Supervision: each admitted job gets a runner thread that executes worker
attempts — in-process (``mode="thread"``) or as a supervised subprocess
(``mode="process"``, the deployment the chaos gate SIGKILLs).  A crashed
or retryably-failed attempt is journalled post-mortem and respawned with
bounded deterministic backoff (:func:`~repro.runtime.supervisor.
backoff_delay`) up to ``max_retries`` times; the respawned attempt resumes
from the committed step prefix, bit-identical to an uninterrupted run.
Cancellation and per-job deadlines always release the admission slot: the
running/queued gauges return to zero once every job settles.

Locking discipline: one condition (``_cond``) guards all mutable maps;
journal I/O, subprocess management and backoff sleeps happen strictly
outside it (REP703), with the single-writer rule — a journal is appended
by the worker while one is alive, by the manager only post-mortem, and
always after :meth:`~repro.jobs.journal.JobJournal.recover`.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Union

from repro.cascades.index import CascadeIndex
from repro.jobs.errors import (
    JobConflict,
    JobJournalCorrupt,
    JobNotDone,
    JobNotFound,
    JobQueueFull,
)
from repro.jobs.journal import JobJournal, summarize
from repro.jobs.spec import JobSpec, check_idempotency_key
from repro.jobs.worker import (
    PERMANENT_EXIT,
    PermanentJobError,
    cancel_requested,
    request_cancel,
    run_attempt,
)
from repro.runtime.faults import maybe_fire
from repro.runtime.locksan import make_condition
from repro.runtime.supervisor import SupervisorConfig, backoff_delay
from repro.serve.errors import ComputeUnavailable
from repro.serve.metrics import MetricsRegistry
from repro.store.provenance import IndexProvenance

PathLike = Union[str, os.PathLike]

#: Job ids the HTTP surface accepts (also blocks path traversal).
JOB_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: States from which a job never leaves.
TERMINAL_STATES = ("done", "cancelled", "failed-permanent")

#: Poll cadence of the subprocess supervision loop, seconds.
_POLL_SECONDS = 0.02


@dataclass
class _Running:
    """Book-keeping of one live runner."""

    thread: threading.Thread
    pid: int | None = None


class JobManager:
    """Durable seed-selection jobs over one served cascade index."""

    def __init__(
        self,
        index: CascadeIndex,
        jobs_dir: PathLike,
        *,
        index_path: PathLike | None = None,
        registry: MetricsRegistry | None = None,
        mode: str = "thread",
        max_running: int = 2,
        max_queued: int = 16,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        retry_after: float = 1.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if mode == "process" and index_path is None:
            raise ValueError("mode='process' needs index_path for the workers")
        if max_running < 1:
            raise ValueError(f"max_running must be >= 1, got {max_running}")
        if max_queued < 1:
            raise ValueError(f"max_queued must be >= 1, got {max_queued}")
        self._index = index
        self._index_path = os.fspath(index_path) if index_path else None
        self._index_digest = IndexProvenance.from_index(index).content_digest
        self._root = Path(os.fspath(jobs_dir))
        self._root.mkdir(parents=True, exist_ok=True)
        self._mode = mode
        self._max_running = int(max_running)
        self._max_queued = int(max_queued)
        self._retry_after = float(retry_after)
        self._clock = clock
        self._supervisor = SupervisorConfig(
            max_chunk_retries=max_retries,
            backoff_base=backoff_base,
            backoff_max=backoff_max,
        )
        self._max_retries = int(max_retries)

        self._cond = make_condition("JobManager._cond")
        self._queue: list[str] = []  # guarded-by: _cond
        self._running: dict[str, _Running] = {}  # guarded-by: _cond
        self._idempotency: dict[str, tuple[str, str]] = {}  # guarded-by: _cond
        self._next_number = 1  # guarded-by: _cond
        self._stop = threading.Event()

        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.jobs_total = reg.counter(
            "repro_jobs_total",
            "Seed-selection jobs by lifecycle event "
            "(submitted / done / cancelled / failed-permanent).",
        )
        self.jobs_running = reg.gauge(
            "repro_jobs_running", "Seed-selection jobs currently running."
        )
        self.jobs_queued = reg.gauge(
            "repro_jobs_queued", "Seed-selection jobs waiting for a slot."
        )
        self.job_step_seconds = reg.histogram(
            "repro_jobs_step_seconds",
            "Committed greedy-iteration durations of finished jobs.",
        )
        self.job_retries_total = reg.counter(
            "repro_jobs_retries_total",
            "Worker attempts respawned after a retryable failure or crash.",
        )

        self._recover_existing()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="jobs-scheduler", daemon=True
        )
        self._scheduler.start()

    # -- introspection -------------------------------------------------------

    @property
    def jobs_dir(self) -> Path:
        return self._root

    @property
    def mode(self) -> str:
        return self._mode

    def healthz(self) -> dict:
        with self._cond:
            queued = len(self._queue)
            running = len(self._running)
        return {
            "mode": self._mode,
            "queued": queued,
            "running": running,
            "max_queued": self._max_queued,
            "max_running": self._max_running,
        }

    # -- paths ---------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Path:
        if not isinstance(job_id, str) or not JOB_ID_PATTERN.match(job_id):
            raise JobNotFound(f"malformed job id {job_id!r}")
        return self._root / job_id

    # -- startup recovery ----------------------------------------------------

    def _recover_existing(self) -> None:
        """Rebuild queue + idempotency map from the journals on disk.

        All journal reads happen before the lock is taken (file I/O never
        runs under ``_cond``); the scan results are then applied to the
        guarded maps in one short critical section.  Non-terminal jobs
        (including ones journalled as *running* when the previous manager
        died) are re-enqueued — the worker resumes them from their
        committed step prefix.
        """
        keys: list[tuple[str, str, str]] = []  # (key, job_id, digest)
        pending: list[str] = []
        highest = 0
        for job_dir in sorted(p for p in self._root.iterdir() if p.is_dir()):
            job_id = job_dir.name
            if not JOB_ID_PATTERN.match(job_id):
                continue
            journal = JobJournal(job_dir)
            if not journal.exists():
                continue
            try:
                view = summarize(journal.replay())
            except JobJournalCorrupt:
                continue  # refused explicitly at status/result time
            if view["spec"] is not None:
                key = view.get("idempotency_key")
                if key:
                    digest = JobSpec.from_mapping(view["spec"]).digest()
                    keys.append((key, job_id, digest))
            match = re.match(r"^j(\d+)$", job_id)
            if match:
                highest = max(highest, int(match.group(1)) + 1)
            if view["state"] not in TERMINAL_STATES:
                pending.append(job_id)
        with self._cond:
            for key, job_id, digest in keys:
                self._idempotency[key] = (job_id, digest)
            self._next_number = max(self._next_number, highest)
            for job_id in pending:
                self._queue.append(job_id)
                self.jobs_queued.inc()

    # -- submission ----------------------------------------------------------

    def submit(self, payload: object) -> dict:
        """Validate, admit, journal and enqueue one job (``POST /jobs/infmax``).

        Idempotent: resubmitting with the same ``idempotency_key`` and an
        identical spec returns the original job; the same key with a
        *different* spec is refused with 409.
        """
        spec = JobSpec.from_payload(payload, self._index.num_nodes)
        key = check_idempotency_key(
            payload.get("idempotency_key") if isinstance(payload, dict) else None
        )
        digest = spec.digest()
        with self._cond:
            if self._stop.is_set():
                raise ComputeUnavailable("job manager is shutting down")
            deduplicated_id = None
            if key is not None and key in self._idempotency:
                known_id, known_digest = self._idempotency[key]
                if known_digest != digest:
                    raise JobConflict(
                        f"idempotency key {key!r} was already used by job "
                        f"{known_id} with a different spec"
                    )
                deduplicated_id = known_id
            if deduplicated_id is None:
                if len(self._queue) >= self._max_queued:
                    raise JobQueueFull(
                        f"job queue full ({self._max_queued} waiting); retry "
                        "shortly",
                        retry_after=self._retry_after,
                    )
                job_id = f"j{self._next_number:06d}"
                self._next_number += 1
                self._queue.append(job_id)
                if key is not None:
                    self._idempotency[key] = (job_id, digest)
                self.jobs_queued.inc()
        if deduplicated_id is not None:
            return self._status_payload(deduplicated_id, deduplicated=True)
        try:
            maybe_fire("jobs.submit", key=job_id)
            journal = JobJournal(self._root / job_id)
            journal.append(
                {
                    "type": "submit",
                    "job_id": job_id,
                    "spec": spec.to_payload(),
                    "submitted_at": self._clock(),
                    "idempotency_key": key,
                    "index_digest": self._index_digest,
                }
            )
        except Exception:
            with self._cond:
                if job_id in self._queue:
                    self._queue.remove(job_id)
                    self.jobs_queued.dec()
                if key is not None:
                    self._idempotency.pop(key, None)
            raise
        self.jobs_total.inc(state="submitted")
        with self._cond:
            self._cond.notify_all()
        return self._status_payload(job_id)

    # -- status / result / cancel / list -------------------------------------

    def _status_payload(self, job_id: str, deduplicated: bool = False) -> dict:
        job_dir = self._job_dir(job_id)
        with self._cond:
            queued = job_id in self._queue
            live = self._running.get(job_id)
            pid = live.pid if live is not None else None
        journal = JobJournal(job_dir)
        if not journal.exists():
            if queued:
                # Reserved but not yet journalled (submit in flight).
                return {"id": job_id, "state": "queued", "steps": 0}
            raise JobNotFound(f"no job {job_id!r}")
        view = summarize(journal.replay())
        spec = view.get("spec") or {}
        payload = {
            "id": job_id,
            "state": view["state"],
            "model": spec.get("model"),
            "k": spec.get("k"),
            "steps": view["steps"],
            "attempts": view["attempts"],
            "submitted_at": view["submitted_at"],
            "finished_at": view["finished_at"],
            "error": view["error"],
            "worker_pid": pid,
        }
        if deduplicated:
            payload["deduplicated"] = True
        # The journal may still say "running"/"failed-retryable" after a
        # manager restart; until a runner owns it again it is queued.
        if queued and payload["state"] in ("running", "failed-retryable"):
            payload["state"] = "queued"
        return payload

    def status(self, job_id: str) -> dict:
        """``GET /jobs/{id}``."""
        return self._status_payload(job_id)

    def result(self, job_id: str) -> dict:
        """``GET /jobs/{id}/result`` — only once the job is ``done``."""
        job_dir = self._job_dir(job_id)
        journal = JobJournal(job_dir)
        if not journal.exists():
            raise JobNotFound(f"no job {job_id!r}")
        view = summarize(journal.replay())
        if view["state"] != "done":
            raise JobNotDone(
                f"job {job_id} is {view['state']}, not done"
                + (f" ({view['error']})" if view["error"] else "")
            )
        return {"id": job_id, "state": "done", "result": view["result"]}

    def cancel(self, job_id: str) -> dict:
        """``POST /jobs/{id}/cancel`` — cooperative, idempotent.

        A queued job is cancelled immediately (the manager is the journal
        writer while no worker exists); a running one gets the marker file
        and settles at its next step boundary.  Either way its admission
        slot is released.
        """
        job_dir = self._job_dir(job_id)
        journal = JobJournal(job_dir)
        with self._cond:
            was_queued = job_id in self._queue
            if was_queued:
                self._queue.remove(job_id)
                self.jobs_queued.dec()
        if not journal.exists():
            raise JobNotFound(f"no job {job_id!r}")
        if was_queued:
            self._append_post_mortem(
                journal,
                {
                    "type": "cancelled",
                    "reason": "cancelled while queued",
                    "at": self._clock(),
                },
            )
            self._settle_metrics(journal)
        else:
            request_cancel(job_dir)
        return self._status_payload(job_id)

    def list_jobs(self) -> dict:
        """``GET /jobs`` — id, state and progress of every known job."""
        jobs = []
        for job_dir in sorted(p for p in self._root.iterdir() if p.is_dir()):
            if not JOB_ID_PATTERN.match(job_dir.name):
                continue
            journal = JobJournal(job_dir)
            if not journal.exists():
                continue
            try:
                view = summarize(journal.replay())
            except JobJournalCorrupt:
                jobs.append(
                    {"id": job_dir.name, "state": "corrupt", "steps": 0}
                )
                continue
            spec = view.get("spec") or {}
            jobs.append(
                {
                    "id": job_dir.name,
                    "state": view["state"],
                    "model": spec.get("model"),
                    "steps": view["steps"],
                }
            )
        return {"count": len(jobs), "jobs": jobs}

    # -- scheduling ----------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop.is_set() and not (
                    self._queue and len(self._running) < self._max_running
                ):
                    self._cond.wait(timeout=0.5)
                if self._stop.is_set():
                    return
                job_id = self._queue.pop(0)
                self.jobs_queued.dec()
                runner = threading.Thread(
                    target=self._run_job,
                    args=(job_id,),
                    name=f"job-runner-{job_id}",
                    daemon=True,
                )
                self._running[job_id] = _Running(thread=runner)
                self.jobs_running.inc()
            runner.start()

    def _run_job(self, job_id: str) -> None:
        try:
            self._drive(job_id)
        finally:
            with self._cond:
                self._running.pop(job_id, None)
                self.jobs_running.dec()
                self._cond.notify_all()

    def _append_post_mortem(self, journal: JobJournal, record: dict) -> None:
        """Manager-side append: repair the tail first, never double-settle.

        Only called when no worker is alive for this journal (the single-
        writer rule); a terminal record that beat us (e.g. the worker
        finished in the instant before a deadline kill) wins.
        """
        records = journal.recover()
        if summarize(records)["state"] in TERMINAL_STATES:
            return
        journal.append(record)

    def _settle_metrics(self, journal: JobJournal) -> None:
        records = journal.replay()
        view = summarize(records)
        if view["state"] not in TERMINAL_STATES:
            return
        self.jobs_total.inc(state=view["state"])
        previous_at = view["submitted_at"]
        for record in records:
            at = record.get("at")
            if record.get("type") == "step" and at is not None:
                if previous_at is not None:
                    self.job_step_seconds.observe(max(0.0, at - previous_at))
            if at is not None:
                previous_at = at

    def _drive(self, job_id: str) -> None:
        """Run worker attempts for one job until it settles (or we stop)."""
        job_dir = self._root / job_id
        journal = JobJournal(job_dir)
        records = journal.recover()
        view = summarize(records)
        if view["state"] in TERMINAL_STATES:
            return
        if view["spec"] is None:
            return  # journal has no submit record; nothing to run
        spec = JobSpec.from_mapping(view["spec"])
        submitted_at = view["submitted_at"]
        attempt = view["attempts"]
        failures = 0
        while not self._stop.is_set():
            if cancel_requested(job_dir):
                self._append_post_mortem(
                    journal,
                    {
                        "type": "cancelled",
                        "reason": "cancellation requested",
                        "at": self._clock(),
                    },
                )
                break
            outcome, reason = self._run_one_attempt(
                job_id, job_dir, journal, spec, submitted_at, attempt
            )
            attempt += 1
            if outcome == "stopped":
                return  # journal stays non-terminal: resumable on restart
            if outcome == "terminal":
                break
            failures += 1
            self.job_retries_total.inc()
            if failures > self._max_retries:
                self._append_post_mortem(
                    journal,
                    {
                        "type": "failed",
                        "retryable": False,
                        "reason": (
                            f"gave up after {failures} failed attempts "
                            f"(last: {reason})"
                        ),
                        "at": self._clock(),
                    },
                )
                break
            self._append_post_mortem(
                journal,
                {
                    "type": "failed",
                    "retryable": True,
                    "reason": str(reason),
                    "at": self._clock(),
                },
            )
            time.sleep(backoff_delay(self._supervisor, failures))
        self._settle_metrics(journal)

    def _run_one_attempt(
        self,
        job_id: str,
        job_dir: Path,
        journal: JobJournal,
        spec: JobSpec,
        submitted_at: float | None,
        attempt: int,
    ) -> tuple[str, str | None]:
        """One worker attempt; returns ``(outcome, reason)`` with outcome in
        ``terminal`` / ``retry`` / ``stopped``."""
        if self._mode == "thread":
            try:
                run_attempt(job_dir, self._index, attempt, clock=self._clock)
                return "terminal", None
            except (PermanentJobError, JobJournalCorrupt) as exc:
                self._append_post_mortem(
                    journal,
                    {
                        "type": "failed",
                        "retryable": False,
                        "reason": str(exc),
                        "at": self._clock(),
                    },
                )
                return "terminal", None
            except Exception as exc:
                return "retry", f"{type(exc).__name__}: {exc}"

        argv = [
            sys.executable,
            "-m",
            "repro.jobs.worker",
            str(job_dir),
            "--index",
            str(self._index_path),
            "--attempt",
            str(attempt),
        ]
        proc = subprocess.Popen(argv)
        with self._cond:
            live = self._running.get(job_id)
            if live is not None:
                live.pid = proc.pid
        try:
            while True:
                returncode = proc.poll()
                if returncode is not None:
                    break
                if self._stop.is_set():
                    proc.terminate()
                    proc.wait(timeout=5.0)
                    return "stopped", None
                if (
                    spec.deadline is not None
                    and submitted_at is not None
                    and self._clock() - submitted_at > spec.deadline + 1.0
                ):
                    # The worker checks its deadline at step boundaries;
                    # a worker stuck *inside* a step gets killed here.
                    proc.kill()
                    proc.wait(timeout=5.0)
                    self._append_post_mortem(
                        journal,
                        {
                            "type": "failed",
                            "retryable": False,
                            "reason": (
                                f"deadline of {spec.deadline}s exceeded "
                                "(worker killed mid-step)"
                            ),
                            "at": self._clock(),
                        },
                    )
                    return "terminal", None
                time.sleep(_POLL_SECONDS)
        finally:
            with self._cond:
                live = self._running.get(job_id)
                if live is not None:
                    live.pid = None
        if returncode == 0:
            return "terminal", None
        if returncode == PERMANENT_EXIT:
            self._append_post_mortem(
                journal,
                {
                    "type": "failed",
                    "retryable": False,
                    "reason": f"worker refused permanently (exit {returncode})",
                    "at": self._clock(),
                },
            )
            return "terminal", None
        return "retry", f"worker exited with status {returncode}"

    # -- shutdown ------------------------------------------------------------

    def stop(self, timeout: float = 10.0) -> None:
        """Stop scheduling, terminate live workers, leave journals resumable."""
        self._stop.set()
        with self._cond:
            self._cond.notify_all()
            runners = [r.thread for r in self._running.values()]
        self._scheduler.join(timeout=timeout)
        for thread in runners:
            thread.join(timeout=timeout)
