"""HTTP request routing for the sphere-query service.

One ``BaseHTTPRequestHandler`` subclass maps the URL surface onto
:class:`~repro.serve.app.SphereService` methods:

====== ======================== ==========================================
method path                     service call
====== ======================== ==========================================
GET    /healthz                 :meth:`SphereService.healthz`
GET    /metrics                 :meth:`SphereService.metrics_text`
GET    /sphere/{node}           :meth:`SphereService.sphere`
GET    /cascades/{node}         :meth:`SphereService.cascades`
GET    /cascades/{node}?world=i :meth:`SphereService.cascades`
GET    /most-reliable           :meth:`SphereService.most_reliable`
POST   /spheres                 :meth:`SphereService.sphere_batch`
POST   /admin/reload            :meth:`SphereService.reload`
POST   /jobs/infmax             :meth:`JobManager.submit` (``202``; ``200``
                                when an idempotency key deduplicates)
GET    /jobs                    :meth:`JobManager.list_jobs`
GET    /jobs/{id}               :meth:`JobManager.status`
GET    /jobs/{id}/result        :meth:`JobManager.result`
POST   /jobs/{id}/cancel        :meth:`JobManager.cancel`
====== ======================== ==========================================

The ``/jobs`` family answers ``404`` when no job manager is attached
(server started without ``--jobs``).

Every JSON body is rendered by :func:`~repro.serve.query.canonical_json`,
so a handler response and the CLI's ``index query --json`` output are
byte-identical for the same query.  Failures are JSON error documents
``{"error": {"status": ..., "message": ...}}``; retryable refusals
(``429`` shed, ``503`` breaker-open) additionally carry a ``Retry-After``
header.

No input reaches a traceback: bodies over :data:`MAX_BODY_BYTES` are
refused with ``413`` *before* being read or JSON-parsed, malformed input
of any shape maps to a clean 4xx, unknown methods get a JSON ``501``
(via the :meth:`send_error` override), and an unexpected exception in a
handler becomes a sanitized JSON ``500`` naming only the exception type.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.jobs.errors import JobNotFound
from repro.serve.errors import (
    BadRequest,
    NodeNotFound,
    PayloadTooLarge,
    RetryableError,
    ServeError,
)
from repro.serve.query import canonical_json

#: Max accepted request body (1 MiB — thousands of node ids).
MAX_BODY_BYTES = 1 << 20


def _parse_int(raw: str, name: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise BadRequest(f"{name} must be an integer, got {raw!r}") from None


class SphereRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`SphereService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # Per-request access logging off by default: the service is instrumented
    # through /metrics instead, and the hammer tests would flood stderr.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def service(self):
        return self.server.service

    # -- plumbing ------------------------------------------------------------

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: tuple[tuple[str, str], ...] = (),
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any, **kwargs) -> None:
        self._send(status, canonical_json(payload), **kwargs)

    def _send_error_payload(self, exc: ServeError) -> None:
        extra: tuple[tuple[str, str], ...] = ()
        if isinstance(exc, RetryableError):
            extra = (("Retry-After", format(exc.retry_after, "g")),)
        self._send_json(
            exc.status,
            {"error": {"status": exc.status, "message": exc.message}},
            extra_headers=extra,
        )

    def send_error(self, code, message=None, explain=None) -> None:  # noqa: D102
        # http.server calls this for transport-level failures (unsupported
        # method -> 501, bad request line -> 400); emit the same JSON error
        # shape as every routed failure instead of the default HTML page.
        code = int(code)
        if message is None:
            short, _ = self.responses.get(code, ("error", ""))
            message = short
        self.close_connection = True
        try:
            body = canonical_json(
                {"error": {"status": code, "message": str(message)}}
            )
            self.send_response(code, str(message))
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(body)
        except OSError:
            pass  # client already gone

    def _dispatch(self, endpoint: str, handler) -> None:
        """Run one routed handler, recording latency and outcome metrics.

        Every exception class ends as a JSON response: :class:`ServeError`
        with its own status, a vanished client silently, and anything else
        as a sanitized ``500`` that names the exception type but leaks no
        message or traceback.
        """
        service = self.service
        start = time.perf_counter()
        status = 500
        try:
            status = handler()
        except ServeError as exc:
            status = exc.status
            self._send_error_payload(exc)
        except BrokenPipeError:
            pass  # client went away mid-response; nothing left to send
        except Exception as exc:
            status = 500
            try:
                self._send_json(
                    500,
                    {"error": {"status": 500,
                               "message": f"internal error ({type(exc).__name__})"}},
                )
            except OSError:
                pass
        finally:
            service.request_seconds.observe(
                time.perf_counter() - start, endpoint=endpoint
            )
            service.requests_total.inc(endpoint=endpoint, status=str(status))

    def _query_params(self) -> dict[str, str]:
        parsed = parse_qs(urlsplit(self.path).query, keep_blank_values=False)
        return {name: values[-1] for name, values in parsed.items()}

    def _read_json_body(self, *, required: bool) -> Any:
        """The request body as parsed JSON, size-capped before the read."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise BadRequest("Content-Length must be an integer") from None
        if length <= 0:
            if required:
                raise BadRequest("this endpoint needs a JSON body")
            return None
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            self._dispatch("healthz", self._handle_healthz)
        elif path == "/metrics":
            self._dispatch("metrics", self._handle_metrics)
        elif len(parts) == 2 and parts[0] == "sphere":
            self._dispatch("sphere", lambda: self._handle_sphere(parts[1]))
        elif len(parts) == 2 and parts[0] == "cascades":
            self._dispatch("cascades", lambda: self._handle_cascades(parts[1]))
        elif path == "/most-reliable":
            self._dispatch("most_reliable", self._handle_most_reliable)
        elif path == "/jobs":
            self._dispatch("jobs_list", self._handle_jobs_list)
        elif len(parts) == 2 and parts[0] == "jobs":
            self._dispatch(
                "jobs_status", lambda: self._handle_job_status(parts[1])
            )
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._dispatch(
                "jobs_result", lambda: self._handle_job_result(parts[1])
            )
        else:
            self._dispatch("unknown", self._handle_unknown)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path.rstrip("/")
        parts = [p for p in path.split("/") if p]
        if path == "/spheres":
            self._dispatch("spheres_batch", self._handle_batch)
        elif path == "/admin/reload":
            self._dispatch("admin_reload", self._handle_reload)
        elif path == "/jobs/infmax":
            self._dispatch("jobs_submit", self._handle_job_submit)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            self._dispatch(
                "jobs_cancel", lambda: self._handle_job_cancel(parts[1])
            )
        else:
            self._dispatch("unknown", self._handle_unknown)

    # -- endpoint bodies (each returns the response status it sent) ----------

    def _handle_healthz(self) -> int:
        self._send_json(200, self.service.healthz())
        return 200

    def _handle_metrics(self) -> int:
        body = self.service.metrics_text().encode("utf-8")
        self._send(200, body, content_type="text/plain; version=0.0.4")
        return 200

    def _handle_sphere(self, raw_node: str) -> int:
        node = _parse_int(raw_node, "node")
        self._send_json(200, self.service.sphere(node))
        return 200

    def _handle_cascades(self, raw_node: str) -> int:
        node = _parse_int(raw_node, "node")
        params = self._query_params()
        world = None
        if "world" in params:
            world = _parse_int(params["world"], "world")
        self._send_json(200, self.service.cascades(node, world))
        return 200

    def _handle_most_reliable(self) -> int:
        params = self._query_params()
        count = _parse_int(params.get("count", "10"), "count")
        min_size = _parse_int(params.get("min-size", "2"), "min-size")
        self._send_json(200, self.service.most_reliable(count, min_size))
        return 200

    def _handle_batch(self) -> int:
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict) or "nodes" not in payload:
            raise BadRequest('body must be a JSON object {"nodes": [...]}')
        nodes = payload["nodes"]
        if not isinstance(nodes, list):
            raise BadRequest("'nodes' must be a list of integers")
        self._send_json(200, self.service.sphere_batch(nodes))
        return 200

    def _handle_reload(self) -> int:
        payload = self._read_json_body(required=False)
        index_path = None
        spheres_path = None
        if payload is not None:
            if not isinstance(payload, dict):
                raise BadRequest(
                    'reload body must be a JSON object, e.g. {"index": "path"}'
                )
            index_path = payload.get("index")
            spheres_path = payload.get("spheres")
            for name, value in (("index", index_path), ("spheres", spheres_path)):
                if value is not None and not isinstance(value, str):
                    raise BadRequest(f"'{name}' must be a path string")
        self._send_json(200, self.service.reload(index_path, spheres_path))
        return 200

    # -- jobs endpoints ------------------------------------------------------

    def _jobs(self):
        manager = self.service.jobs
        if manager is None:
            raise JobNotFound(
                "the job service is not enabled on this server "
                "(start it with --jobs)"
            )
        return manager

    def _handle_job_submit(self) -> int:
        manager = self._jobs()
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict):
            raise BadRequest(
                'body must be a JSON object, e.g. {"model": "celfpp", "k": 5}'
            )
        view = manager.submit(payload)
        status = 200 if view.get("deduplicated") else 202
        self._send_json(status, view)
        return status

    def _handle_jobs_list(self) -> int:
        self._send_json(200, self._jobs().list_jobs())
        return 200

    def _handle_job_status(self, job_id: str) -> int:
        self._send_json(200, self._jobs().status(job_id))
        return 200

    def _handle_job_result(self, job_id: str) -> int:
        self._send_json(200, self._jobs().result(job_id))
        return 200

    def _handle_job_cancel(self, job_id: str) -> int:
        self._send_json(200, self._jobs().cancel(job_id))
        return 200

    def _handle_unknown(self) -> int:
        raise NodeNotFound(f"no route for {self.command} {self.path}")
