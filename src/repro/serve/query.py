"""Canonical query payloads shared by the CLI and the HTTP service.

``python -m repro index query --json`` and the server's JSON endpoints must
return **byte-identical** documents for the same query, so both go through
the helpers here: one function per query shape building a plain dict, and
:func:`canonical_json` fixing the byte-level encoding (sorted keys, compact
separators, ASCII).  Anything that varies between the two surfaces would be
a bug in this module, not in its callers.

Missing nodes/worlds raise ``KeyError`` with a message naming the universe
size (``node 17 not in index (200 nodes)``); the service maps these to HTTP
404, the CLI to a one-line exit-2 error.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cascades.index import CascadeIndex
    from repro.core.sphere import SphereOfInfluence
    from repro.core.store import SphereStore


def canonical_json(payload: Any) -> bytes:
    """One true byte encoding of a payload dict (no trailing newline)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("ascii")


def require_node(node: int, num_nodes: int, *, universe: str = "index") -> int:
    """Validate a node id against the served universe, ``KeyError`` style."""
    node = int(node)
    if not 0 <= node < num_nodes:
        raise KeyError(f"node {node} not in {universe} ({num_nodes} nodes)")
    return node


def require_world(world: int, num_worlds: int) -> int:
    world = int(world)
    if not 0 <= world < num_worlds:
        raise KeyError(f"world {world} not in index ({num_worlds} worlds)")
    return world


def sphere_payload(node: int, sphere: "SphereOfInfluence") -> dict[str, Any]:
    """The JSON document of ``GET /sphere/{node}``.

    Only fields the :class:`~repro.core.store.SphereStore` persists are
    included, so a sphere served from a precomputed store and the same
    sphere recomputed on demand (or by the CLI) encode identically.
    """
    return {
        "node": int(node),
        "size": sphere.size,
        "cost": float(sphere.cost),
        "members": sphere.members.tolist(),
        "num_samples": int(sphere.num_samples),
        "sample_size_mean": float(sphere.sample_size_mean),
        "sample_size_std": float(sphere.sample_size_std),
        "sample_size_max": int(sphere.sample_size_max),
    }


def cascade_stats_payload(index: "CascadeIndex", node: int) -> dict[str, Any]:
    """The JSON document of ``GET /cascades/{node}`` (per-world sizes)."""
    node = require_node(node, index.num_nodes)
    sizes = [index.cascade_size(node, w) for w in range(index.num_worlds)]
    return {
        "node": node,
        "num_worlds": index.num_worlds,
        "sizes": sizes,
        "size_min": min(sizes),
        "size_mean": sum(sizes) / len(sizes),
        "size_max": max(sizes),
    }


def cascade_world_payload(
    index: "CascadeIndex", node: int, world: int
) -> dict[str, Any]:
    """The JSON document of ``GET /cascades/{node}?world=i``."""
    node = require_node(node, index.num_nodes)
    world = require_world(world, index.num_worlds)
    cascade = index.cascade(node, world)
    return {
        "node": node,
        "world": world,
        "size": int(cascade.size),
        "members": cascade.tolist(),
    }


def most_reliable_payload(
    store: "SphereStore", count: int, min_size: int = 2
) -> dict[str, Any]:
    """The JSON document of ``GET /most-reliable``."""
    nodes = store.most_reliable(int(count), min_size=int(min_size))
    return {
        "count": int(count),
        "min_size": int(min_size),
        "nodes": [int(v) for v in nodes],
    }
