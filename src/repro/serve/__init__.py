"""Online sphere-query serving (Section 8's "reuse the same spheres").

The paper's spheres of influence are precomputed summaries meant to be
*queried at decision time*; this package is the online read path over the
persistent stores the rest of the library builds: a stdlib-only HTTP/JSON
service (``python -m repro serve``) that answers sphere and cascade queries
straight from a memory-mapped index, with an LRU cache, single-flight
request coalescing and load shedding protecting the on-demand compute path.

Layers (transport-independent core first):

* :mod:`repro.serve.app` — :class:`SphereService` and the draining server;
* :mod:`repro.serve.handlers` — HTTP routing;
* :mod:`repro.serve.query` — canonical JSON payloads (shared with the CLI);
* :mod:`repro.serve.cache` / :mod:`repro.serve.coalesce` — hot-path guards;
* :mod:`repro.serve.metrics` — Prometheus text-format instrumentation;
* :mod:`repro.serve.errors` — HTTP-mapped exception hierarchy.
"""

from repro.serve.app import (
    DrainingHTTPServer,
    SphereService,
    make_server,
    run_until_signal,
)
from repro.serve.cache import LRUCache
from repro.serve.coalesce import SingleFlight
from repro.serve.errors import BadRequest, NodeNotFound, ServeError, ShedLoad
from repro.serve.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "BadRequest",
    "Counter",
    "DrainingHTTPServer",
    "Histogram",
    "LRUCache",
    "MetricsRegistry",
    "NodeNotFound",
    "ServeError",
    "ShedLoad",
    "SingleFlight",
    "SphereService",
    "make_server",
    "run_until_signal",
]
