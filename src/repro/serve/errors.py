"""Exception hierarchy of the online query service.

Every error a handler can surface to a client maps to one exception type
carrying its HTTP status, so the routing layer turns failures into JSON
error bodies with a single ``except ServeError`` — no status-code logic
scattered through the handlers.

The serving contract is *either correct or refused*: a response is either
byte-identical to what an uninterrupted serial computation would have
produced, or it is one of these explicit errors.  The refusal statuses:

====  =======================  =============================================
code  exception                cause
====  =======================  =============================================
400   :class:`BadRequest`      malformed request (body, parameter, header)
404   :class:`NodeNotFound`    node/world/route outside the served universe
413   :class:`PayloadTooLarge` batch body over the byte or ``max_batch`` cap
429   :class:`ShedLoad`        admission control: compute slots exhausted
500   :class:`StoreCorrupt`    a store column failed its checksum (quarantined)
500   :class:`InternalError`   the compute itself failed (breaker input)
503   :class:`ComputeUnavailable`  circuit breaker open: compute tier cold
504   :class:`DeadlineExceeded`    the request ran past its deadline
====  =======================  =============================================
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for every client-visible service failure."""

    #: HTTP status the routing layer responds with.
    status = 500

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class BadRequest(ServeError):
    """The request itself is malformed (unparseable body, bad parameter)."""

    status = 400


class NodeNotFound(ServeError):
    """The queried node (or world) does not exist in the served index."""

    status = 404


class PayloadTooLarge(ServeError):
    """The batch body exceeds the byte cap or the ``max_batch`` node cap.

    Raised from the Content-Length header, *before* the body is read or
    parsed, so an oversized request costs the server no JSON decode and no
    compute.
    """

    status = 413


class RetryableError(ServeError):
    """A refusal the client should retry after backing off.

    Carries the ``Retry-After`` hint (seconds) the handler sends so
    well-behaved clients back off instead of retrying immediately.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ShedLoad(RetryableError):
    """Admission control rejected the request: the in-flight compute queue
    is at its configured depth."""

    status = 429


class ComputeUnavailable(RetryableError):
    """The compute circuit breaker is open: the on-demand tier failed or
    timed out repeatedly and cold requests are refused until a half-open
    probe succeeds.  ``retry_after`` is the deterministic time until the
    next probe slot."""

    status = 503


class DeadlineExceeded(ServeError):
    """The request ran past its deadline.  The admission slot has been
    released; any orphaned computation finishes in the background and
    populates the cache without blocking further traffic."""

    status = 504


class StoreCorrupt(ServeError):
    """A store column failed its read-time checksum and is quarantined.

    Queries that need the quarantined column get this explicit error
    instead of a silently-wrong sphere; queries that avoid it keep
    working.  Operators see the quarantine set in ``/healthz``."""

    status = 500


class InternalError(ServeError):
    """The on-demand computation itself raised — a poisoned node or a bug.

    Counted by the circuit breaker; repeated failures open it and degrade
    the server to store+cache-only mode."""

    status = 500
