"""Exception hierarchy of the online query service.

Every error a handler can surface to a client maps to one exception type
carrying its HTTP status, so the routing layer turns failures into JSON
error bodies with a single ``except ServeError`` — no status-code logic
scattered through the handlers.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for every client-visible service failure."""

    #: HTTP status the routing layer responds with.
    status = 500

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class BadRequest(ServeError):
    """The request itself is malformed (unparseable body, bad parameter)."""

    status = 400


class NodeNotFound(ServeError):
    """The queried node (or world) does not exist in the served index."""

    status = 404


class ShedLoad(ServeError):
    """Admission control rejected the request: the in-flight compute queue
    is at its configured depth.  Carries the ``Retry-After`` hint (seconds)
    the handler sends so well-behaved clients back off instead of retrying
    immediately."""

    status = 429

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
