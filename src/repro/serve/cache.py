"""Bounded, thread-safe LRU result cache for on-demand sphere computes.

The serving hot path is the precomputed :class:`~repro.core.store.
SphereStore`; this cache sits behind it and keeps the most recently
requested *cold* spheres so repeated queries for the same node pay the
Jaccard-median cost once.  The implementation is an ``OrderedDict`` under
one lock — computes dominate by orders of magnitude, so a finer-grained
scheme would buy nothing.

Hit/miss/eviction events fire optional callbacks (the service wires them to
its Prometheus counters) and are also tallied locally so the cache is
observable on its own in tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.runtime.locksan import make_lock

#: Distinguishes "not cached" from a cached ``None`` value.
MISSING = object()

_Callback = Callable[[], None]


class LRUCache:
    """Least-recently-used mapping with a hard capacity bound.

    ``capacity=0`` disables caching entirely (every ``get`` misses, ``put``
    is a no-op) — the configuration the cold-compute benchmarks use.
    """

    def __init__(
        self,
        capacity: int,
        *,
        on_hit: _Callback | None = None,
        on_miss: _Callback | None = None,
        on_evict: _Callback | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = int(capacity)
        self._lock = make_lock("LRUCache._lock")
        self._data: OrderedDict[Hashable, Any] = OrderedDict()  # guarded-by: _lock
        self._on_hit = on_hit
        self._on_miss = on_miss
        self._on_evict = on_evict
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable, default: Any = MISSING) -> Any:
        """The cached value, marking ``key`` most recently used; ``default``
        (the :data:`MISSING` sentinel unless overridden) on a miss."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                value = self._data[key]
                self._hits += 1
                hit = True
            else:
                value = default
                self._misses += 1
                hit = False
        callback = self._on_hit if hit else self._on_miss
        if callback is not None:
            callback()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry at capacity."""
        if self._capacity == 0:
            return
        evicted = 0
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                evicted += 1
                self._evictions += 1
        if self._on_evict is not None:
            for _ in range(evicted):
                self._on_evict()

    def clear(self) -> int:
        """Drop every entry, returning how many were dropped (the reload
        path reports this as cold-start cost of a store swap)."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
        return dropped

    def stats(self) -> dict[str, int]:
        """Current size plus lifetime hit/miss/eviction tallies."""
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self._capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }
