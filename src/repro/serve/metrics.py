"""Minimal thread-safe metrics registry with Prometheus text rendering.

The service needs counters (requests, cache hits, sheds, computes), gauges
(breaker state, quarantine size, store generation) and latency histograms
without growing a third-party dependency, so this module implements the
three metric kinds the Prometheus text exposition format (version 0.0.4)
defines for them.  Everything is lock-protected and the
rendered output is canonically ordered (sorted metric names, sorted label
sets), so ``GET /metrics`` is deterministic for a deterministic workload.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping

from repro.runtime.locksan import make_lock

#: Default latency buckets (seconds): sub-millisecond cache hits through
#: multi-second cold computes on large indexes.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    # %g collapses 3.0 -> "3" without a float == comparison.
    return format(value, "g")


class Counter:
    """Monotonic counter, optionally labelled.

    ``inc(**labels)`` creates one child per distinct label set; the
    unlabelled usage (``inc()``) is the common case and renders as a single
    sample.
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = make_lock("Counter._lock")
        self._values: dict[_LabelKey, float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set (convenience for tests/assertions)."""
        with self._lock:
            return sum(self._values.values())

    def render(self) -> Iterable[str]:
        with self._lock:
            snapshot = sorted(self._values.items())
        if not snapshot:
            snapshot = [((), 0.0)]
        for key, value in snapshot:
            yield f"{self.name}{_render_labels(key)} {_format_value(value)}"


class Gauge:
    """A value that can go up and down (breaker state, quarantine size).

    Unlike :class:`Counter` it supports ``set`` and decrements; the serving
    layer uses gauges for the facts an operator polls — current circuit
    state, quarantined-column count, store generation.
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = make_lock("Gauge._lock")
        self._values: dict[_LabelKey, float] = {}  # guarded-by: _lock

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> Iterable[str]:
        with self._lock:
            snapshot = sorted(self._values.items())
        if not snapshot:
            snapshot = [((), 0.0)]
        for key, value in snapshot:
            yield f"{self.name}{_render_labels(key)} {_format_value(value)}"


class Histogram:
    """Cumulative-bucket histogram in the Prometheus style."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty tuple")
        self.name = name
        self.help_text = help_text
        self._buckets = tuple(float(b) for b in buckets)
        self._lock = make_lock("Histogram._lock")
        # Per label set: per-finite-bucket counts + overflow slot, sum, count.
        self._series: dict[_LabelKey, tuple[list[int], list[float]]] = {}  # guarded-by: _lock

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        slot = bisect_left(self._buckets, value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = ([0] * (len(self._buckets) + 1), [0.0, 0.0])
                self._series[key] = series
            counts, sum_count = series
            counts[slot] += 1
            sum_count[0] += value
            sum_count[1] += 1.0

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return int(series[1][1]) if series is not None else 0

    def render(self) -> Iterable[str]:
        with self._lock:
            snapshot = [
                (key, list(counts), list(sum_count))
                for key, (counts, sum_count) in sorted(self._series.items())
            ]
        for key, counts, sum_count in snapshot:
            cumulative = 0
            for threshold, count in zip(self._buckets, counts):
                cumulative += count
                le = (("le", _format_value(threshold)),)
                yield (
                    f"{self.name}_bucket{_render_labels(key, le)} {cumulative}"
                )
            cumulative += counts[-1]
            yield f'{self.name}_bucket{_render_labels(key, (("le", "+Inf"),))} {cumulative}'
            yield f"{self.name}_sum{_render_labels(key)} {_format_value(sum_count[0])}"
            yield f"{self.name}_count{_render_labels(key)} {int(sum_count[1])}"


class MetricsRegistry:
    """Names -> metrics, rendered together as one exposition document."""

    def __init__(self) -> None:
        self._lock = make_lock("MetricsRegistry._lock")
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}  # guarded-by: _lock

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._register(name, lambda: Gauge(name, help_text), Gauge)

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help_text, buckets), Histogram
        )

    def _register(self, name, factory, expected):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected):
                raise ValueError(
                    f"metric {name} already registered as {metric.kind}"
                )
            return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The full registry in Prometheus text format (0.0.4)."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
