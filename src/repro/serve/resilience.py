"""Resilience primitives of the online query service.

PR 4's serving stack protected throughput (cache, coalescing, admission
control); this module protects *liveness and correctness under failure*.
Four primitives, all deterministic under an injected monotonic clock so
every state transition is unit-testable without sleeping:

* :class:`Deadline` — a monotonic-clock budget threaded from the HTTP
  layer through cache/coalesce/compute.  A request that cannot finish in
  time is refused with :class:`~repro.serve.errors.DeadlineExceeded`
  (HTTP 504) instead of holding resources indefinitely.
* :func:`call_with_watchdog` — runs a computation on a sacrificial thread
  and abandons it at the deadline.  Python computations cannot be killed,
  so the watchdog converts "wedged compute" from *a permanently lost
  admission slot* into *one orphaned thread plus an explicit 504*; the
  orphan's eventual result is handed to a callback (the service uses it
  to fill the cache) rather than thrown away.
* :class:`CircuitBreaker` — closed → open after ``failure_threshold``
  consecutive compute failures/timeouts; while open, cold requests are
  refused (HTTP 503 + ``Retry-After``) so a poisoned node or exhausted
  pool degrades the server to store+cache-only mode instead of stacking
  doomed work.  The half-open probe schedule is purely a function of the
  injected clock: one probe per ``reset_after`` window, success closes,
  failure re-opens.
* :class:`ReadersWriterLock` — write-preferring shared/exclusive lock
  guarding the store/cache generation.  Requests read-lock for their
  duration; a verified hot-swap reload write-locks only for the pointer
  swap, so in-flight requests always complete against a consistent
  generation and zero requests are dropped across a reload.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.runtime.locksan import assert_held, make_condition, make_lock
from repro.serve.errors import ComputeUnavailable, DeadlineExceeded

Clock = Callable[[], float]


class Deadline:
    """A point on the monotonic clock by which a request must finish.

    ``Deadline.after(None)`` (or a non-positive budget) is the *unbounded*
    deadline: ``expired()`` is always False and ``remaining()`` is None —
    the configuration of a server run with ``--deadline 0``.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: float | None, clock: Clock = time.monotonic) -> None:
        self._expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float | None, clock: Clock = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now; ``None``/non-positive = unbounded."""
        if seconds is None or seconds <= 0:
            return cls(None, clock)
        return cls(clock() + float(seconds), clock)

    @property
    def bounded(self) -> bool:
        return self._expires_at is not None

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0.0), or ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return (
            self._expires_at is not None and self._clock() >= self._expires_at
        )

    def require(self, what: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is already spent."""
        if self.expired():
            raise DeadlineExceeded(f"deadline exceeded before {what}")


#: Shared unbounded deadline — the default when no budget is configured.
UNBOUNDED = Deadline(None)


def call_with_watchdog(
    fn: Callable[[], Any],
    deadline: Deadline,
    *,
    what: str = "compute",
    on_late_result: Callable[[Any], None] | None = None,
) -> Any:
    """Run ``fn`` to completion or to ``deadline``, whichever comes first.

    With an unbounded deadline this is a plain call (zero overhead).  With
    a bounded one, ``fn`` runs on a daemon thread and the caller waits at
    most the remaining budget: on timeout :class:`DeadlineExceeded` is
    raised *and the caller's resources (admission slot, read lock) are
    freed by unwinding* while the orphaned thread runs on.  If the orphan
    eventually succeeds, ``on_late_result`` receives its value — the
    deterministic computation is still worth caching; a late error is
    dropped (it was already reported as a timeout).
    """
    if not deadline.bounded:
        return fn()
    remaining = deadline.remaining()
    if remaining is not None and remaining <= 0:
        raise DeadlineExceeded(f"deadline exceeded before {what}")

    state_lock = make_lock("call_with_watchdog.state_lock")
    done = threading.Event()
    abandoned = [False]
    box: list[Any] = []
    error: list[BaseException] = []

    def runner() -> None:
        try:
            value = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the waiter
            error.append(exc)
        else:
            box.append(value)
        # The lock makes completion and abandonment mutually exclusive:
        # either the waiter takes this result as on-time, or it has
        # already walked away and the result is banked via the callback.
        with state_lock:
            done.set()
            late = abandoned[0]
        if late and box and on_late_result is not None:
            on_late_result(box[0])

    # A dedicated thread per bounded compute (not a pool): a wedged pool
    # worker would silently shrink capacity, while a wedged dedicated
    # thread costs exactly itself and is bounded by the timeout rate.
    threading.Thread(target=runner, name=f"watchdog-{what}", daemon=True).start()
    if not done.wait(remaining):
        with state_lock:
            if not done.is_set():
                abandoned[0] = True
        if abandoned[0]:
            raise DeadlineExceeded(
                f"{what} exceeded its deadline ({remaining:.3f}s budget); "
                "the computation continues in the background"
            )
    if error:
        raise error[0]
    return box[0]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a deterministic clock.

    States:

    ``closed``
        Normal operation.  ``failure_threshold`` *consecutive* failures
        trip it open (any success resets the streak).
    ``open``
        Every :meth:`allow` raises :class:`ComputeUnavailable` carrying
        the exact seconds until the next probe slot.  After
        ``reset_after`` seconds the next caller is admitted as the probe.
    ``half_open``
        Exactly one probe call is in flight; followers are refused.  The
        probe's success closes the breaker, its failure re-opens it for a
        fresh ``reset_after`` window.

    All transitions are functions of (call outcomes, injected clock), so a
    test driving a fake clock observes the exact same schedule every run.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 5.0,
        *,
        clock: Clock = time.monotonic,
        on_state_change: Callable[[str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after <= 0:
            raise ValueError(f"reset_after must be positive, got {reset_after}")
        self._threshold = int(failure_threshold)
        self._reset_after = float(reset_after)
        self._clock = clock
        self._on_state_change = on_state_change
        self._lock = make_lock("CircuitBreaker._lock")
        self._state = self.CLOSED  # guarded-by: _lock
        self._consecutive_failures = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        self._probing = False  # guarded-by: _lock

    @property
    def failure_threshold(self) -> int:
        return self._threshold

    @property
    def reset_after(self) -> float:
        return self._reset_after

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def _effective_state(self) -> str:  # requires-lock: _lock
        """State after applying clock-driven open → half-open promotion."""
        assert_held("CircuitBreaker._lock")
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self._reset_after
        ):
            return self.HALF_OPEN
        return self._state

    def _set_state(self, state: str) -> None:  # requires-lock: _lock
        assert_held("CircuitBreaker._lock")
        changed = state != self._state
        self._state = state
        if changed and self._on_state_change is not None:
            self._on_state_change(state)

    def allow(self) -> None:
        """Admit one compute call, or refuse with :class:`ComputeUnavailable`.

        Must be paired with exactly one :meth:`record_success` /
        :meth:`record_failure` for the admitted call (the half-open probe
        slot is reserved until its outcome arrives).
        """
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return
            if state == self.HALF_OPEN and not self._probing:
                self._set_state(self.HALF_OPEN)
                self._probing = True
                return
            if state == self.HALF_OPEN:
                # A probe is already in flight; refuse followers until it
                # resolves (retry once the current window would end).
                retry_after = self._reset_after
            else:
                retry_after = max(
                    0.0,
                    self._opened_at + self._reset_after - self._clock(),
                )
            raise ComputeUnavailable(
                "compute circuit breaker is open "
                f"({self._consecutive_failures} consecutive failures); "
                "serving store/cache hits only",
                retry_after=retry_after,
            )

    def abandon(self) -> None:
        """Return an admitted call's slot without recording an outcome.

        For callers that were admitted by :meth:`allow` but failed before
        the computation could produce a success/failure signal (admission
        shed, corrupt-store refusal).  Without this, an exception between
        ``allow()`` and ``record_*`` during a half-open window would leave
        the probe slot reserved forever and the breaker permanently open.
        """
        with self._lock:
            self._probing = False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            self._set_state(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            was_probe = self._probing
            self._probing = False
            if was_probe or self._consecutive_failures >= self._threshold:
                self._opened_at = self._clock()
                self._set_state(self.OPEN)

    def snapshot(self) -> dict[str, Any]:
        """State summary for ``/healthz``."""
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self._threshold,
                "reset_after_seconds": self._reset_after,
            }


class ReadersWriterLock:
    """Write-preferring shared/exclusive lock.

    Many readers may hold the lock together; a writer waits for them to
    drain and, while waiting, blocks *new* readers — so a reload cannot be
    starved by a steady request stream, and requests queue for at most one
    swap (microseconds) plus the drain of their predecessors.

    Not reentrant: a thread must not acquire ``read()`` while already
    holding it (a writer arriving between the two acquisitions would
    deadlock).  The service takes the read lock once at its public
    surface and calls only unlocked internals below it.
    """

    def __init__(self) -> None:
        self._cond = make_condition("ReadersWriterLock._cond")
        self._readers = 0  # guarded-by: _cond
        self._writer = False  # guarded-by: _cond
        self._writers_waiting = 0  # guarded-by: _cond

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    class _Guard:
        __slots__ = ("_acquire", "_release")

        def __init__(
            self,
            acquire: Callable[[], None],
            release: Callable[[], None],
        ) -> None:
            self._acquire = acquire
            self._release = release

        def __enter__(self) -> "ReadersWriterLock._Guard":
            self._acquire()
            return self

        def __exit__(self, *exc_info: object) -> bool:
            self._release()
            return False

    def read(self) -> "ReadersWriterLock._Guard":
        """``with lock.read():`` — shared acquisition."""
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "ReadersWriterLock._Guard":
        """``with lock.write():`` — exclusive acquisition."""
        return self._Guard(self.acquire_write, self.release_write)
