"""The online sphere-query service.

:class:`SphereService` is the transport-independent core: it answers sphere
and cascade queries over a loaded :class:`~repro.cascades.index.
CascadeIndex`, serving precomputed spheres straight out of a memory-mapped
:class:`~repro.core.store.SphereStore` when one is attached and falling
back to on-demand computation through a
:class:`~repro.core.typical_cascade.TypicalCascadeComputer` otherwise.  The
on-demand path is protected by three layers, outermost first:

1. a bounded LRU result cache (:mod:`repro.serve.cache`);
2. single-flight coalescing (:mod:`repro.serve.coalesce`) — N concurrent
   requests for the same cold node run exactly one computation;
3. admission control — once ``max_inflight`` distinct computations are in
   flight, further cold requests are shed with
   :class:`~repro.serve.errors.ShedLoad` (HTTP ``429 Retry-After``) instead
   of queueing threads without bound.

:func:`make_server` wraps a service in a draining ``ThreadingHTTPServer``;
:func:`run_until_signal` runs it until SIGTERM/SIGINT, finishing in-flight
requests before returning (graceful shutdown).
"""

from __future__ import annotations

import os
import signal
import threading
from http.server import ThreadingHTTPServer
from typing import Any, Iterable, Union

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.core.store import SphereStore
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.serve import query as q
from repro.serve.cache import MISSING, LRUCache
from repro.serve.coalesce import SingleFlight
from repro.serve.errors import BadRequest, NodeNotFound, ShedLoad
from repro.serve.metrics import MetricsRegistry

PathLike = Union[str, os.PathLike]


class SphereService:
    """Query façade over an index plus optional precomputed sphere store.

    Thread safety: every public method may be called concurrently; see the
    read-path audit note on :class:`~repro.core.typical_cascade.
    TypicalCascadeComputer` (the index read path is immutable or
    lock-protected; the service never calls ``extend``).
    """

    def __init__(
        self,
        index: Union[CascadeIndex, PathLike],
        *,
        spheres: Union[SphereStore, PathLike, None] = None,
        cache_size: int = 1024,
        max_inflight: int = 8,
        retry_after: float = 1.0,
        size_grid_ratio: float = 1.15,
        registry: MetricsRegistry | None = None,
        source: str | None = None,
    ) -> None:
        if not isinstance(index, CascadeIndex):
            if source is None:
                source = os.fspath(index)
            index = CascadeIndex.load(index)
        if spheres is not None and not isinstance(spheres, SphereStore):
            spheres = SphereStore.load(spheres)
        if max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {max_inflight}")
        self._index = index
        self._spheres = spheres
        self._computer = TypicalCascadeComputer(
            index, size_grid_ratio=size_grid_ratio
        )
        self._retry_after = float(retry_after)
        self._source = source if source is not None else "in-memory index"

        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.requests_total = reg.counter(
            "repro_serve_requests_total", "HTTP requests by endpoint and status."
        )
        self.request_seconds = reg.histogram(
            "repro_serve_request_seconds", "Request latency by endpoint."
        )
        self.store_hits_total = reg.counter(
            "repro_serve_store_hits_total",
            "Sphere queries answered from the precomputed sphere store.",
        )
        self.computes_total = reg.counter(
            "repro_serve_computes_total",
            "On-demand TypicalCascadeComputer.compute calls actually run.",
        )
        self.coalesced_total = reg.counter(
            "repro_serve_coalesced_total",
            "Sphere requests that piggybacked on another request's compute.",
        )
        self.shed_total = reg.counter(
            "repro_serve_shed_total",
            "Cold sphere computations rejected by admission control.",
        )
        cache_hits = reg.counter(
            "repro_serve_cache_hits_total", "LRU result-cache hits."
        )
        cache_misses = reg.counter(
            "repro_serve_cache_misses_total", "LRU result-cache misses."
        )
        cache_evictions = reg.counter(
            "repro_serve_cache_evictions_total", "LRU result-cache evictions."
        )
        self.cache = LRUCache(
            cache_size,
            on_hit=cache_hits.inc,
            on_miss=cache_misses.inc,
            on_evict=cache_evictions.inc,
        )
        self._flight = SingleFlight()
        # Admission control over *distinct* in-flight computations (a burst
        # of coalesced followers consumes one slot, not N).
        self._slots = threading.Semaphore(max_inflight)
        self._max_inflight = int(max_inflight)

    # -- introspection -------------------------------------------------------

    @property
    def index(self) -> CascadeIndex:
        return self._index

    @property
    def spheres(self) -> SphereStore | None:
        return self._spheres

    @property
    def source(self) -> str:
        return self._source

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    # -- core lookups --------------------------------------------------------

    def _check_node(self, node: int) -> int:
        try:
            return q.require_node(node, self._index.num_nodes)
        except KeyError as exc:
            raise NodeNotFound(exc.args[0]) from exc

    def get_sphere(self, node: int) -> SphereOfInfluence:
        """The sphere of ``node``: store, then cache, then coalesced compute.

        With the node present in the attached sphere store this performs
        **zero** computer calls (the warm-path guarantee the smoke test
        pins via ``repro_serve_computes_total``).
        """
        node = self._check_node(node)
        if self._spheres is not None:
            hit = self._spheres.get(node)
            if hit is not None:
                self.store_hits_total.inc()
                return hit
        hit = self.cache.get(node)
        if hit is not MISSING:
            return hit

        def compute() -> SphereOfInfluence:
            if not self._slots.acquire(blocking=False):
                self.shed_total.inc()
                raise ShedLoad(
                    f"compute queue full ({self._max_inflight} in flight); "
                    "retry shortly",
                    retry_after=self._retry_after,
                )
            try:
                self.computes_total.inc()
                sphere = self._computer.compute(node)
            finally:
                self._slots.release()
            self.cache.put(node, sphere)
            return sphere

        sphere, leader = self._flight.do(node, compute)
        if not leader:
            self.coalesced_total.inc()
        return sphere

    # -- endpoint payloads ---------------------------------------------------

    def sphere(self, node: int) -> dict[str, Any]:
        return q.sphere_payload(node, self.get_sphere(node))

    def cascades(self, node: int, world: int | None = None) -> dict[str, Any]:
        try:
            if world is None:
                return q.cascade_stats_payload(self._index, node)
            return q.cascade_world_payload(self._index, node, world)
        except KeyError as exc:
            raise NodeNotFound(exc.args[0]) from exc

    def sphere_batch(self, nodes: Iterable[Any]) -> dict[str, Any]:
        """``POST /spheres``: per-node results, errors embedded per entry."""
        nodes = list(nodes)
        if not nodes:
            raise BadRequest("batch needs a non-empty 'nodes' list")
        results: list[dict[str, Any]] = []
        for raw in nodes:
            if isinstance(raw, bool) or not isinstance(raw, int):
                raise BadRequest(f"node ids must be integers, got {raw!r}")
            try:
                results.append(self.sphere(raw))
            except NodeNotFound as exc:
                results.append(
                    {"node": int(raw), "error": {"status": exc.status,
                                                 "message": exc.message}}
                )
            except ShedLoad as exc:
                results.append(
                    {"node": int(raw), "error": {"status": exc.status,
                                                 "message": exc.message}}
                )
        return {"count": len(results), "results": results}

    def most_reliable(self, count: int, min_size: int = 2) -> dict[str, Any]:
        if self._spheres is None:
            raise BadRequest(
                "most-reliable needs a precomputed sphere store; start the "
                "server with --spheres"
            )
        if count <= 0:
            raise BadRequest(f"count must be positive, got {count}")
        if min_size < 1:
            raise BadRequest(f"min-size must be >= 1, got {min_size}")
        return q.most_reliable_payload(self._spheres, count, min_size)

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "source": self._source,
            "num_nodes": self._index.num_nodes,
            "num_worlds": self._index.num_worlds,
            "precomputed_spheres": (
                len(self._spheres) if self._spheres is not None else 0
            ),
            "cache": self.cache.stats(),
            "max_inflight": self._max_inflight,
        }

    def metrics_text(self) -> str:
        return self.registry.render()


class DrainingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server whose ``server_close`` waits for handlers.

    ``ThreadingHTTPServer`` marks handler threads as daemons, which makes
    ``server_close`` abandon in-flight requests; flipping ``daemon_threads``
    off restores ``socketserver``'s thread tracking, so shutdown drains —
    every accepted request finishes before the process exits.
    """

    daemon_threads = False
    allow_reuse_address = True

    def __init__(self, address, handler_class, service: SphereService) -> None:
        self.service = service
        super().__init__(address, handler_class)


def make_server(
    service: SphereService, host: str = "127.0.0.1", port: int = 0
) -> DrainingHTTPServer:
    """Bind a draining server for ``service`` (``port=0`` = ephemeral)."""
    from repro.serve.handlers import SphereRequestHandler

    return DrainingHTTPServer((host, port), SphereRequestHandler, service)


def run_until_signal(
    server: DrainingHTTPServer,
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> None:
    """Serve until one of ``signals`` arrives, then drain and close.

    ``BaseServer.shutdown`` blocks until the serve loop exits, so calling
    it from a signal handler running *in* the serving main thread would
    deadlock; the handler hands it to a helper thread instead.  Must be
    called from the main thread (CPython delivers signals there).
    """

    def request_shutdown(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {s: signal.signal(s, request_shutdown) for s in signals}
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        server.server_close()
