"""The online sphere-query service.

:class:`SphereService` is the transport-independent core: it answers sphere
and cascade queries over a loaded :class:`~repro.cascades.index.
CascadeIndex`, serving precomputed spheres straight out of a memory-mapped
:class:`~repro.core.store.SphereStore` when one is attached and falling
back to on-demand computation through a
:class:`~repro.core.typical_cascade.TypicalCascadeComputer` otherwise.  The
on-demand path is protected by three layers, outermost first:

1. a bounded LRU result cache (:mod:`repro.serve.cache`);
2. single-flight coalescing (:mod:`repro.serve.coalesce`) — N concurrent
   requests for the same cold node run exactly one computation;
3. admission control — once ``max_inflight`` distinct computations are in
   flight, further cold requests are shed with
   :class:`~repro.serve.errors.ShedLoad` (HTTP ``429 Retry-After``) instead
   of queueing threads without bound.

On top of the throughput layers sits the resilience layer
(:mod:`repro.serve.resilience`), whose contract is *either correct or
refused*:

* every request carries a :class:`Deadline`; cold computes run under a
  watchdog so an over-deadline request returns ``504``, frees its
  admission slot and leaves the orphaned computation to late-fill the
  cache;
* a :class:`CircuitBreaker` around the compute tier degrades the server
  to store+cache-only mode (``503 Retry-After``) after repeated compute
  failures or timeouts, probing its way back on a deterministic schedule;
* :meth:`SphereService.reload` hot-swaps to a checksum-verified candidate
  store under a :class:`ReadersWriterLock` — in-flight requests finish on
  their generation, a failed verification rolls back to the old one;
* store columns that fail their read-time checksum (``verify="lazy"``)
  are quarantined and surface as explicit ``500 store-corrupt`` errors,
  never as silently-wrong spheres.

:func:`make_server` wraps a service in a draining ``ThreadingHTTPServer``;
:func:`run_until_signal` runs it until SIGTERM/SIGINT, finishing in-flight
requests before returning (graceful shutdown), and reloads on SIGHUP.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from contextlib import contextmanager
from http.server import ThreadingHTTPServer
from typing import Any, Iterable, Iterator, Union

from repro.cascades.index import CascadeIndex
from repro.core.sphere import SphereOfInfluence
from repro.core.store import SphereStore
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.runtime.errors import InjectedFault
from repro.runtime.faults import maybe_fire
from repro.runtime.locksan import make_lock
from repro.serve import query as q
from repro.serve.cache import MISSING, LRUCache
from repro.serve.coalesce import SingleFlight
from repro.serve.errors import (
    BadRequest,
    ComputeUnavailable,
    DeadlineExceeded,
    InternalError,
    NodeNotFound,
    PayloadTooLarge,
    ServeError,
    ShedLoad,
    StoreCorrupt,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.resilience import (
    CircuitBreaker,
    Clock,
    Deadline,
    ReadersWriterLock,
    call_with_watchdog,
)
from repro.store.errors import CorruptColumnError, StoreError

PathLike = Union[str, os.PathLike]

#: Prometheus value of the breaker-state gauge per state name.
_BREAKER_GAUGE = {"closed": 0, "half_open": 1, "open": 2}


class SphereService:
    """Query façade over an index plus optional precomputed sphere store.

    Thread safety: every public method may be called concurrently; see the
    read-path audit note on :class:`~repro.core.typical_cascade.
    TypicalCascadeComputer` (the index read path is immutable or
    lock-protected; the service never calls ``extend``).  Public methods
    take the generation read lock exactly once and never re-enter it —
    :meth:`reload` is the only writer.
    """

    def __init__(
        self,
        index: Union[CascadeIndex, PathLike],
        *,
        spheres: Union[SphereStore, PathLike, None] = None,
        cache_size: int = 1024,
        max_inflight: int = 8,
        retry_after: float = 1.0,
        size_grid_ratio: float = 1.15,
        registry: MetricsRegistry | None = None,
        source: str | None = None,
        deadline: float | None = None,
        max_batch: int = 256,
        breaker_threshold: int = 5,
        breaker_reset: float = 5.0,
        verify: str = "lazy",
        shard_id: int | None = None,
        replica_id: int | None = None,
        clock: Clock = time.monotonic,
    ) -> None:
        self._index_path: str | None = None
        self._spheres_path: str | None = None
        if not isinstance(index, CascadeIndex):
            self._index_path = os.fspath(index)
            if source is None:
                source = self._index_path
            index = CascadeIndex.load(index, verify=verify)
        if spheres is not None and not isinstance(spheres, SphereStore):
            self._spheres_path = os.fspath(spheres)
            spheres = SphereStore.load(spheres)
        if max_inflight < 0:
            raise ValueError(f"max_inflight must be >= 0, got {max_inflight}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._index = index  # guarded-by: _lock
        self._spheres = spheres  # guarded-by: _lock
        self._computer = TypicalCascadeComputer(  # guarded-by: _lock
            index, size_grid_ratio=size_grid_ratio
        )
        self._retry_after = float(retry_after)
        self._size_grid_ratio = float(size_grid_ratio)
        self._source = source if source is not None else "in-memory index"
        self._verify = verify
        self._shard_id = int(shard_id) if shard_id is not None else None
        self._replica_id = int(replica_id) if replica_id is not None else None
        self._clock = clock
        self._deadline_seconds = (
            float(deadline) if deadline is not None and deadline > 0 else None
        )
        self._max_batch = int(max_batch)

        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.requests_total = reg.counter(
            "repro_serve_requests_total", "HTTP requests by endpoint and status."
        )
        self.request_seconds = reg.histogram(
            "repro_serve_request_seconds", "Request latency by endpoint."
        )
        self.store_hits_total = reg.counter(
            "repro_serve_store_hits_total",
            "Sphere queries answered from the precomputed sphere store.",
        )
        self.computes_total = reg.counter(
            "repro_serve_computes_total",
            "On-demand TypicalCascadeComputer.compute calls actually run.",
        )
        self.coalesced_total = reg.counter(
            "repro_serve_coalesced_total",
            "Sphere requests that piggybacked on another request's compute.",
        )
        self.shed_total = reg.counter(
            "repro_serve_shed_total",
            "Cold sphere computations rejected by admission control.",
        )
        self.deadline_exceeded_total = reg.counter(
            "repro_serve_deadline_exceeded_total",
            "Requests refused with 504 for running past their deadline.",
        )
        self.compute_failures_total = reg.counter(
            "repro_serve_compute_failures_total",
            "On-demand computations that failed or timed out, by kind.",
        )
        self.breaker_rejected_total = reg.counter(
            "repro_serve_breaker_rejected_total",
            "Cold requests refused with 503 while the circuit breaker was open.",
        )
        self.store_corrupt_total = reg.counter(
            "repro_serve_store_corrupt_total",
            "Requests refused with 500 because a store column is quarantined.",
        )
        self.reloads_total = reg.counter(
            "repro_serve_reloads_total",
            "Hot store reloads by result (ok / rolled_back).",
        )
        self.breaker_state = reg.gauge(
            "repro_serve_breaker_state",
            "Compute circuit breaker state (0=closed, 1=half-open, 2=open).",
        )
        self.store_generation = reg.gauge(
            "repro_serve_store_generation",
            "Store generation counter; increments on each successful reload.",
        )
        self.quarantined_columns = reg.gauge(
            "repro_serve_quarantined_columns",
            "Store columns currently quarantined by read-time verification.",
        )
        cache_hits = reg.counter(
            "repro_serve_cache_hits_total", "LRU result-cache hits."
        )
        cache_misses = reg.counter(
            "repro_serve_cache_misses_total", "LRU result-cache misses."
        )
        cache_evictions = reg.counter(
            "repro_serve_cache_evictions_total", "LRU result-cache evictions."
        )
        self.cache = LRUCache(
            cache_size,
            on_hit=cache_hits.inc,
            on_miss=cache_misses.inc,
            on_evict=cache_evictions.inc,
        )
        self._flight = SingleFlight()
        # Admission control over *distinct* in-flight computations (a burst
        # of coalesced followers consumes one slot, not N).
        self._slots = threading.Semaphore(max_inflight)
        self._max_inflight = int(max_inflight)
        self._breaker = CircuitBreaker(
            breaker_threshold,
            breaker_reset,
            clock=clock,
            on_state_change=lambda s: self.breaker_state.set(_BREAKER_GAUGE[s]),
        )
        self._lock = ReadersWriterLock()
        self._reload_lock = make_lock("SphereService._reload_lock")
        self._generation = 1  # guarded-by: _lock
        self.store_generation.set(1)
        # Optional durable job subsystem; see attach_jobs().
        self.jobs = None

    def attach_jobs(self, manager) -> None:
        """Attach a :class:`~repro.jobs.manager.JobManager` to this service.

        Enables the ``/jobs`` endpoint family in the HTTP layer and folds
        the manager's admission state into :meth:`healthz`.  The manager
        shares this service's metrics registry when constructed with it.
        """
        self.jobs = manager

    # -- introspection -------------------------------------------------------

    @property
    def index(self) -> CascadeIndex:
        # Unlocked snapshot read: the reference swap in reload() is atomic
        # and callers of the property want "some recent generation".
        return self._index  # reprolint: disable=REP701

    @property
    def spheres(self) -> SphereStore | None:
        return self._spheres  # reprolint: disable=REP701 - snapshot read

    @property
    def source(self) -> str:
        return self._source

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def deadline_seconds(self) -> float | None:
        return self._deadline_seconds

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def generation(self) -> int:
        return self._generation  # reprolint: disable=REP701 - snapshot read

    @property
    def shard_id(self) -> int | None:
        """This worker's shard id when serving a fleet shard, else ``None``."""
        return self._shard_id

    @property
    def replica_id(self) -> int | None:
        """This worker's replica id within its shard, else ``None``."""
        return self._replica_id

    def new_deadline(self) -> Deadline:
        """A fresh per-request deadline from the configured budget."""
        return Deadline.after(self._deadline_seconds, self._clock)

    # -- resilience plumbing -------------------------------------------------

    def _quarantined(self) -> tuple[str, ...]:  # requires-lock: _lock
        guard = self._index.store_integrity
        return guard.quarantined() if guard is not None else ()

    def _map_corrupt(self, exc: CorruptColumnError) -> StoreCorrupt:  # requires-lock: _lock
        self.store_corrupt_total.inc()
        self.quarantined_columns.set(len(self._quarantined()))
        return StoreCorrupt(
            f"store column {exc.column!r} failed its checksum and is "
            f"quarantined: {exc}"
        )

    @contextmanager
    def _request_guard(self) -> Iterator[None]:  # requires-lock: _lock
        """Translate resilience-layer exceptions at the public surface."""
        try:
            yield
        except DeadlineExceeded:
            self.deadline_exceeded_total.inc()
            raise
        except CorruptColumnError as exc:
            raise self._map_corrupt(exc) from exc

    # -- core lookups --------------------------------------------------------

    def _check_node(self, node: int) -> int:  # requires-lock: _lock
        try:
            return q.require_node(node, self._index.num_nodes)
        except KeyError as exc:
            raise NodeNotFound(exc.args[0]) from exc

    def get_sphere(
        self, node: int, deadline: Deadline | None = None
    ) -> SphereOfInfluence:
        """The sphere of ``node``: store, then cache, then coalesced compute.

        With the node present in the attached sphere store this performs
        **zero** computer calls (the warm-path guarantee the smoke test
        pins via ``repro_serve_computes_total``).
        """
        if deadline is None:
            deadline = self.new_deadline()
        with self._lock.read(), self._request_guard():
            return self._sphere_locked(node, deadline)

    # requires-lock: _lock
    def _sphere_locked(
        self, node: int, deadline: Deadline
    ) -> SphereOfInfluence:
        node = self._check_node(node)
        deadline.require(f"sphere({node}) lookup")
        maybe_fire("serve.store_read", key=node)
        if self._spheres is not None:
            hit = self._spheres.get(node)
            if hit is not None:
                self.store_hits_total.inc()
                return hit
        hit = self.cache.get(node)
        if hit is not MISSING:
            return hit

        # Captured so the (possibly orphaned) computation banks its result
        # into the generation it was computed against, never a reloaded one.
        cache = self.cache
        generation = self._generation

        def bank(sphere: SphereOfInfluence) -> None:
            if self._generation == generation:
                cache.put(node, sphere)

        def bank_late(sphere: SphereOfInfluence) -> None:
            # Runs on an orphaned watchdog thread that holds no locks:
            # re-enter through the read lock so the generation check and
            # the cache fill are ordered against an in-progress reload
            # swap (the unlocked check in bank() is safe for the leader
            # only because the leader's caller already holds the lock).
            with self._lock.read():
                bank(sphere)

        def compute() -> SphereOfInfluence:
            try:
                self._breaker.allow()
            except ComputeUnavailable:
                self.breaker_rejected_total.inc()
                raise
            # Every admitted call must settle the breaker exactly once.
            # Outcomes the compute tier is accountable for (success,
            # error, timeout) are recorded; refusals that happen between
            # admission and the computation itself (shed, quarantined
            # column) abandon the slot instead — otherwise a half-open
            # probe that sheds would reserve the probe slot forever and
            # hold the breaker open with no way to close it.
            settled = False
            try:
                if not self._slots.acquire(blocking=False):
                    self.shed_total.inc()
                    raise ShedLoad(
                        f"compute queue full ({self._max_inflight} in flight); "
                        "retry shortly",
                        retry_after=self._retry_after,
                    )
                try:
                    self.computes_total.inc()

                    def run() -> SphereOfInfluence:
                        maybe_fire("serve.compute", key=node)
                        return self._computer.compute(node)

                    try:
                        sphere = call_with_watchdog(
                            run,
                            deadline,
                            what=f"compute(node={node})",
                            on_late_result=bank_late,
                        )
                    except DeadlineExceeded:
                        self.compute_failures_total.inc(kind="timeout")
                        self._breaker.record_failure()
                        settled = True
                        raise
                    except CorruptColumnError:
                        # Store damage, not a compute-tier fault: keep the
                        # breaker out of it so the 500 is not masked by a 503.
                        raise
                    except ServeError:
                        raise
                    except Exception as exc:
                        self.compute_failures_total.inc(kind="error")
                        self._breaker.record_failure()
                        settled = True
                        raise InternalError(
                            f"sphere computation for node {node} failed: {exc}"
                        ) from exc
                    self._breaker.record_success()
                    settled = True
                finally:
                    self._slots.release()
            finally:
                if not settled:
                    self._breaker.abandon()
            bank(sphere)
            return sphere

        try:
            sphere, leader = self._flight.do(
                node, compute, timeout=deadline.remaining()
            )
        except TimeoutError:
            # A follower outwaited its own deadline; the leader's flight
            # continues undisturbed for everyone else.
            raise DeadlineExceeded(
                f"deadline exceeded waiting for the in-flight computation "
                f"of node {node}"
            ) from None
        if not leader:
            self.coalesced_total.inc()
        return sphere

    # -- endpoint payloads ---------------------------------------------------

    def sphere(
        self, node: int, deadline: Deadline | None = None
    ) -> dict[str, Any]:
        if deadline is None:
            deadline = self.new_deadline()
        with self._lock.read(), self._request_guard():
            return q.sphere_payload(node, self._sphere_locked(node, deadline))

    def cascades(
        self,
        node: int,
        world: int | None = None,
        deadline: Deadline | None = None,
    ) -> dict[str, Any]:
        if deadline is None:
            deadline = self.new_deadline()
        with self._lock.read(), self._request_guard():
            deadline.require(f"cascades({node})")
            try:
                if world is None:
                    return q.cascade_stats_payload(self._index, node)
                return q.cascade_world_payload(self._index, node, world)
            except KeyError as exc:
                raise NodeNotFound(exc.args[0]) from exc

    def sphere_batch(
        self, nodes: Iterable[Any], deadline: Deadline | None = None
    ) -> dict[str, Any]:
        """``POST /spheres``: per-node results, errors embedded per entry.

        Per-node failures (unknown node, shed, breaker-open, quarantined
        column) are embedded so one bad entry does not void the rest;
        request-scoped failures (malformed input, the *request's* deadline)
        abort the whole batch.
        """
        if deadline is None:
            deadline = self.new_deadline()
        nodes = list(nodes)
        if not nodes:
            raise BadRequest("batch needs a non-empty 'nodes' list")
        if len(nodes) > self._max_batch:
            raise PayloadTooLarge(
                f"batch of {len(nodes)} nodes exceeds the limit of "
                f"{self._max_batch}; split the request"
            )
        seen: set[int] = set()
        for raw in nodes:
            if isinstance(raw, bool) or not isinstance(raw, int):
                raise BadRequest(f"node ids must be integers, got {raw!r}")
            if raw in seen:
                raise BadRequest(f"duplicate node {raw} in batch")
            seen.add(raw)
        results: list[dict[str, Any]] = []
        with self._lock.read(), self._request_guard():
            for raw in nodes:
                deadline.require(f"batch entry for node {raw}")
                try:
                    results.append(
                        q.sphere_payload(raw, self._sphere_locked(raw, deadline))
                    )
                except DeadlineExceeded:
                    raise
                except CorruptColumnError as exc:
                    mapped = self._map_corrupt(exc)
                    results.append(
                        {"node": int(raw), "error": {"status": mapped.status,
                                                     "message": mapped.message}}
                    )
                except ServeError as exc:
                    results.append(
                        {"node": int(raw), "error": {"status": exc.status,
                                                     "message": exc.message}}
                    )
        return {"count": len(results), "results": results}

    def most_reliable(self, count: int, min_size: int = 2) -> dict[str, Any]:
        with self._lock.read():
            if self._spheres is None:
                raise BadRequest(
                    "most-reliable needs a precomputed sphere store; start the "
                    "server with --spheres"
                )
            if count <= 0:
                raise BadRequest(f"count must be positive, got {count}")
            if min_size < 1:
                raise BadRequest(f"min-size must be >= 1, got {min_size}")
            return q.most_reliable_payload(self._spheres, count, min_size)

    def healthz(self) -> dict[str, Any]:
        with self._lock.read():
            quarantined = self._quarantined()
            breaker = self._breaker.snapshot()
            degraded = breaker["state"] != CircuitBreaker.CLOSED or quarantined
            self.quarantined_columns.set(len(quarantined))
            payload = {
                "status": "degraded" if degraded else "ok",
                "shard_id": self._shard_id,
                "replica_id": self._replica_id,
                "store_generation": self._generation,
                "source": self._source,
                "num_nodes": self._index.num_nodes,
                "num_worlds": self._index.num_worlds,
                "precomputed_spheres": (
                    len(self._spheres) if self._spheres is not None else 0
                ),
                "cache": self.cache.stats(),
                "max_inflight": self._max_inflight,
                "max_batch": self._max_batch,
                "deadline_seconds": self._deadline_seconds,
                "generation": self._generation,
                "breaker": breaker,
                "quarantined_columns": list(quarantined),
            }
        if self.jobs is not None:
            payload["jobs"] = self.jobs.healthz()
        return payload

    def metrics_text(self) -> str:
        return self.registry.render()

    # -- hot reload ----------------------------------------------------------

    def reload(
        self,
        index_path: PathLike | None = None,
        spheres_path: PathLike | None = None,
    ) -> dict[str, Any]:
        """Verify a candidate store and atomically swap to it.

        With no arguments, re-opens the paths the service was started from
        (the SIGHUP case, e.g. after ``index append`` grew the store
        in place — safe because appends replace columns via ``os.replace``,
        so the old generation's mmaps stay valid).  The candidate is opened
        and *every* column SHA-256-verified before the swap; any failure
        rolls back — the running generation is untouched and keeps serving.

        The swap itself happens under the write lock: in-flight requests
        drain on their generation, then the store/cache/computer pointers
        flip together, so no request ever observes a mixed generation and
        none are dropped.
        """
        index_path = (
            os.fspath(index_path) if index_path is not None else self._index_path
        )
        spheres_path = (
            os.fspath(spheres_path)
            if spheres_path is not None
            else self._spheres_path
        )
        if index_path is None:
            raise BadRequest(
                "server was started from an in-memory index; there is no "
                "store path to reload"
            )
        # Blocking I/O (candidate load + full SHA-256 scrub) deliberately
        # happens under the reload mutex: it serialises concurrent reloads
        # and is never on a request path (requests take only the RW lock).
        with self._reload_lock:  # reprolint: disable=REP703
            try:
                candidate = CascadeIndex.load(index_path, verify="lazy")
                guard = candidate.store_integrity
                if guard is not None:
                    # Promote the lazy open to a full scrub: hash every
                    # payload column now so the swap is all-or-nothing.
                    from repro.store.format import ARRAY_DTYPES

                    guard.verify(*ARRAY_DTYPES)
                new_spheres = (
                    SphereStore.load(spheres_path)
                    if spheres_path is not None
                    # Snapshot read: reload() is the only writer of
                    # _spheres and reloads are serialised by _reload_lock.
                    else self._spheres  # reprolint: disable=REP701
                )
                maybe_fire("serve.reload")
            except (StoreError, FileNotFoundError, InjectedFault) as exc:
                self.reloads_total.inc(result="rolled_back")
                raise StoreCorrupt(
                    f"reload rolled back ({type(exc).__name__}: {exc}); "
                    "still serving the previous store generation"
                ) from exc
            new_computer = TypicalCascadeComputer(
                candidate, size_grid_ratio=self._size_grid_ratio
            )
            with self._lock.write():
                self._index = candidate
                self._spheres = new_spheres
                self._computer = new_computer
                dropped = self.cache.clear()
                self._generation += 1
                generation = self._generation
            # Fresh verified store: give the compute tier a clean slate.
            self._breaker.record_success()
            self.reloads_total.inc(result="ok")
            self.store_generation.set(generation)
            self.quarantined_columns.set(0)
            # Report the candidate's facts directly — re-reading
            # self._index/_spheres here would race a concurrent reload.
            return {
                "status": "reloaded",
                "generation": generation,
                "source": index_path,
                "num_worlds": candidate.num_worlds,
                "precomputed_spheres": (
                    len(new_spheres) if new_spheres is not None else 0
                ),
                "dropped_cache_entries": dropped,
            }


class DrainingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server whose ``server_close`` waits for handlers.

    ``ThreadingHTTPServer`` marks handler threads as daemons, which makes
    ``server_close`` abandon in-flight requests; flipping ``daemon_threads``
    off restores ``socketserver``'s thread tracking, so shutdown drains —
    every accepted request finishes before the process exits.
    """

    daemon_threads = False
    allow_reuse_address = True

    def __init__(self, address, handler_class, service: SphereService) -> None:
        self.service = service
        super().__init__(address, handler_class)


def make_server(
    service: SphereService, host: str = "127.0.0.1", port: int = 0
) -> DrainingHTTPServer:
    """Bind a draining server for ``service`` (``port=0`` = ephemeral)."""
    from repro.serve.handlers import SphereRequestHandler

    return DrainingHTTPServer((host, port), SphereRequestHandler, service)


def run_until_signal(
    server: DrainingHTTPServer,
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> None:
    """Serve until one of ``signals`` arrives, then drain and close.

    ``BaseServer.shutdown`` blocks until the serve loop exits, so calling
    it from a signal handler running *in* the serving main thread would
    deadlock; the handler hands it to a helper thread instead.  Must be
    called from the main thread (CPython delivers signals there).

    Where the platform has SIGHUP, it triggers a verified hot reload of
    the store the server was started from (see :meth:`SphereService.
    reload`); the outcome is logged to stderr, and a failed reload leaves
    the current generation serving.
    """

    def request_shutdown(signum, frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    def request_reload(signum, frame):
        def _do() -> None:
            try:
                result = server.service.reload()
            except ServeError as exc:
                print(f"[serve] reload failed: {exc.message}", file=sys.stderr)
            else:
                print(
                    f"[serve] reloaded store generation {result['generation']} "
                    f"from {result['source']}",
                    file=sys.stderr,
                )

        threading.Thread(target=_do, daemon=True).start()

    previous = {s: signal.signal(s, request_shutdown) for s in signals}
    if hasattr(signal, "SIGHUP"):
        previous[signal.SIGHUP] = signal.signal(signal.SIGHUP, request_reload)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        server.server_close()
