"""Single-flight request coalescing.

When N concurrent requests ask for the same not-yet-cached node, computing
its sphere N times is pure waste: the computation is deterministic, so one
result serves everybody.  :class:`SingleFlight` guarantees that per key at
most one computation is in flight — the first caller (the *leader*) runs
the function, everyone else (the *followers*) blocks on the leader's result
and receives the very same object (or exception).

The in-flight entry is removed *before* followers are released, so a
request arriving after completion starts a fresh flight — results are never
served stale from here (caching is the cache's job, one layer up).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

from repro.runtime.locksan import make_lock


class _Flight:
    __slots__ = ("done", "value", "error", "waiters")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        self.waiters = 0


class SingleFlight:
    """Per-key deduplication of concurrent identical computations."""

    def __init__(self) -> None:
        self._lock = make_lock("SingleFlight._lock")
        self._flights: dict[Hashable, _Flight] = {}  # guarded-by: _lock

    def do(
        self,
        key: Hashable,
        fn: Callable[[], Any],
        *,
        timeout: float | None = None,
    ) -> tuple[Any, bool]:
        """Run ``fn`` once per concurrent burst of calls sharing ``key``.

        Returns ``(result, leader)`` where ``leader`` is True for the one
        call that actually executed ``fn``.  If ``fn`` raises, every caller
        of the burst sees the same exception.

        ``timeout`` bounds only a *follower's* wait on the leader (the
        leader's own ``fn`` is deadline-guarded elsewhere): a follower
        whose request deadline expires before the leader finishes raises
        :class:`TimeoutError` and unwinds, without disturbing the flight —
        the leader's result still lands for everyone who kept waiting.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                lead = False
            else:
                flight = _Flight()
                self._flights[key] = flight
                lead = True
        if not lead:
            if not flight.done.wait(timeout):
                # The timed-out follower must check out of the flight it
                # checked into, or the waiter count sticks forever and the
                # entry looks permanently occupied to diagnostics and to
                # drain logic keyed on it.
                with self._lock:
                    flight.waiters -= 1
                raise TimeoutError(
                    f"timed out waiting for the in-flight computation of {key!r}"
                )
            if flight.error is not None:
                raise flight.error
            return flight.value, False

        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                del self._flights[key]
            flight.done.set()
        return flight.value, True

    def inflight(self) -> int:
        """Number of keys currently being computed (diagnostics/tests)."""
        with self._lock:
            return len(self._flights)

    def waiters(self, key: Hashable) -> int:
        """Followers currently blocked on ``key``'s flight (tests)."""
        with self._lock:
            flight = self._flights.get(key)
            return flight.waiters if flight is not None else 0
