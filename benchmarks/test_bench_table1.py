"""Benchmark T1 — regenerate Table 1 (dataset characteristics)."""

from repro.experiments.table1 import format_table1, run_table1


def test_bench_table1(benchmark, bench_config, save_result):
    rows = benchmark.pedantic(
        lambda: run_table1(bench_config), rounds=1, iterations=1
    )

    # Shape checks against the paper's Table 1.
    by_name = {r.dataset: r for r in rows}
    assert set(by_name) == {
        "Digg", "Flixster", "Twitter", "NetHEPT", "Epinions", "Slashdot"
    }
    # Directedness column matches the paper.
    assert by_name["Digg"].graph_type == "directed"
    assert by_name["Flixster"].graph_type == "undirected"
    assert by_name["Twitter"].graph_type == "undirected"
    assert by_name["NetHEPT"].graph_type == "undirected"
    assert by_name["Epinions"].graph_type == "directed"
    assert by_name["Slashdot"].graph_type == "directed"
    # Probability-source column matches the paper.
    for name in ("Digg", "Flixster", "Twitter"):
        assert by_name[name].probabilities == "learnt"
    for name in ("NetHEPT", "Epinions", "Slashdot"):
        assert by_name[name].probabilities == "assigned"
    # Relative sizes: Flixster is the largest graph, as in the paper.
    assert by_name["Flixster"].num_nodes == max(r.num_nodes for r in rows)

    save_result("table1", format_table1(rows))
