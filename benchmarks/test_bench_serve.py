"""Micro-benchmarks of the online sphere-query service (repro.serve).

Measures the three sphere-serving tiers the design separates — precomputed
store, warm LRU cache, cold on-demand compute — plus batch-endpoint
throughput over real HTTP.  The headline property being pinned: the
precomputed-store and warm-cache paths are pure lookups (orders of
magnitude under the Jaccard-median compute), which is what lets one server
absorb read-heavy traffic.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.serve.app import SphereService, make_server
from repro.store import read_index, scrub_store

WARM_NODES = tuple(range(24))


@pytest.fixture(scope="module")
def graph():
    base = powerlaw_outdegree_digraph(300, mean_degree=6.0, seed=1)
    return assign_fixed(base, 0.1)


@pytest.fixture(scope="module")
def index(graph):
    return CascadeIndex.build(graph, 32, seed=2)


@pytest.fixture(scope="module")
def sphere_store(index):
    return TypicalCascadeComputer(index).compute_store(nodes=WARM_NODES)


@pytest.fixture()
def http_server(index, sphere_store):
    service = SphereService(
        index, spheres=sphere_store, cache_size=256, max_inflight=8
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield service, base
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.read()


def test_bench_precomputed_store_path(benchmark, http_server):
    """Sphere served straight from the mmap-backed store: zero computes."""
    service, base = http_server
    body = benchmark(lambda: get(base, f"/sphere/{WARM_NODES[0]}"))
    assert json.loads(body)["node"] == WARM_NODES[0]
    assert service.computes_total.value() == 0


def test_bench_warm_cache_path(benchmark, http_server):
    """Cold node computed once, then every request is an LRU cache hit."""
    service, base = http_server
    node = 200
    get(base, f"/sphere/{node}")  # populate the cache
    body = benchmark(lambda: get(base, f"/sphere/{node}"))
    assert json.loads(body)["node"] == node
    assert service.computes_total.value() == 1


def test_bench_cold_compute_path(benchmark, index):
    """On-demand compute with caching disabled: the full median cost."""
    service = SphereService(index, cache_size=0, max_inflight=8)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        node = 250
        body = benchmark(lambda: get(base, f"/sphere/{node}"))
        assert json.loads(body)["node"] == node
        assert service.computes_total.value() >= 1
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture(scope="module")
def store_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-store") / "idx"
    index.save(path, format="store")
    return path


def test_bench_lazy_first_touch_verification(benchmark, store_path):
    """Cost of a lazy open plus the first-touch hash of the payload columns.

    This is the one-off price of ``verify="lazy"`` — every later touch of
    the same open is a set lookup (see the steady-state benchmarks below).
    """

    def open_and_touch():
        loaded = read_index(store_path, verify="lazy")
        loaded.world_members(0)  # hashes members + members_indptr
        return loaded

    loaded = benchmark(open_and_touch)
    verified = loaded.store_integrity.verified()
    assert "members" in verified
    assert loaded.store_integrity.quarantined() == ()


def test_bench_full_scrub(benchmark, store_path):
    """``index verify``: the full-store checksum scrub, every column."""
    report = benchmark(lambda: scrub_store(store_path))
    assert report.ok


def test_bench_resilience_primitives_per_request(benchmark, index):
    """Per-request overhead of the resilience layer in isolation.

    One warm request adds: a Deadline construction, a read-lock
    acquire/release and the request-guard context — this measures exactly
    that composition, which must stay far below the payload-build cost
    that dominates a warm hit.
    """
    service = SphereService(index)

    def resilience_only():
        deadline = service.new_deadline()
        with service._lock.read(), service._request_guard():
            deadline.require("benchmark")

    benchmark(resilience_only)


def test_warm_path_verified_overhead_within_budget(store_path, index):
    """Steady-state overhead of lazy verification on the warm path.

    After first touch the integrity guard is a set lookup, so a service on
    a ``verify="lazy"`` store must answer warm cache hits at effectively
    the same rate as one on a ``verify="fast"`` store.  The design budget
    is <5%; the assertion allows 30% so CI scheduling noise cannot flake
    the build while still catching an accidental per-request re-hash
    (which would be orders of magnitude slower).
    """
    node = 150
    rounds = 400

    def best_of(service):
        service.sphere(node)  # populate the cache / trigger first touch
        timings = []
        for _ in range(5):
            start = time.perf_counter()
            for _ in range(rounds):
                service.sphere(node)
            timings.append(time.perf_counter() - start)
        return min(timings)

    fast = best_of(SphereService(store_path, verify="fast"))
    lazy = best_of(SphereService(store_path, verify="lazy"))
    assert lazy <= fast * 1.30, (
        f"lazy-verified warm path {lazy:.4f}s vs fast {fast:.4f}s "
        f"({lazy / fast - 1:+.1%}) — steady-state verification is not free"
    )


def test_bench_batch_endpoint_throughput(benchmark, http_server):
    """POST /spheres over the warm set: requests amortised per batch."""
    service, base = http_server
    payload = json.dumps({"nodes": list(WARM_NODES)}).encode("ascii")

    def post_batch():
        request = urllib.request.Request(
            base + "/spheres",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.read()

    body = benchmark(post_batch)
    decoded = json.loads(body)
    assert decoded["count"] == len(WARM_NODES)
    assert all("error" not in entry for entry in decoded["results"])
    assert service.computes_total.value() == 0
