"""Micro-benchmarks of the online sphere-query service (repro.serve).

Measures the three sphere-serving tiers the design separates — precomputed
store, warm LRU cache, cold on-demand compute — plus batch-endpoint
throughput over real HTTP.  The headline property being pinned: the
precomputed-store and warm-cache paths are pure lookups (orders of
magnitude under the Jaccard-median compute), which is what lets one server
absorb read-heavy traffic.
"""

import json
import threading
import urllib.request

import pytest

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.serve.app import SphereService, make_server

WARM_NODES = tuple(range(24))


@pytest.fixture(scope="module")
def graph():
    base = powerlaw_outdegree_digraph(300, mean_degree=6.0, seed=1)
    return assign_fixed(base, 0.1)


@pytest.fixture(scope="module")
def index(graph):
    return CascadeIndex.build(graph, 32, seed=2)


@pytest.fixture(scope="module")
def sphere_store(index):
    return TypicalCascadeComputer(index).compute_store(nodes=WARM_NODES)


@pytest.fixture()
def http_server(index, sphere_store):
    service = SphereService(
        index, spheres=sphere_store, cache_size=256, max_inflight=8
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield service, base
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.read()


def test_bench_precomputed_store_path(benchmark, http_server):
    """Sphere served straight from the mmap-backed store: zero computes."""
    service, base = http_server
    body = benchmark(lambda: get(base, f"/sphere/{WARM_NODES[0]}"))
    assert json.loads(body)["node"] == WARM_NODES[0]
    assert service.computes_total.value() == 0


def test_bench_warm_cache_path(benchmark, http_server):
    """Cold node computed once, then every request is an LRU cache hit."""
    service, base = http_server
    node = 200
    get(base, f"/sphere/{node}")  # populate the cache
    body = benchmark(lambda: get(base, f"/sphere/{node}"))
    assert json.loads(body)["node"] == node
    assert service.computes_total.value() == 1


def test_bench_cold_compute_path(benchmark, index):
    """On-demand compute with caching disabled: the full median cost."""
    service = SphereService(index, cache_size=0, max_inflight=8)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        node = 250
        body = benchmark(lambda: get(base, f"/sphere/{node}"))
        assert json.loads(body)["node"] == node
        assert service.computes_total.value() >= 1
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def test_bench_batch_endpoint_throughput(benchmark, http_server):
    """POST /spheres over the warm set: requests amortised per batch."""
    service, base = http_server
    payload = json.dumps({"nodes": list(WARM_NODES)}).encode("ascii")

    def post_batch():
        request = urllib.request.Request(
            base + "/spheres",
            data=payload,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.read()

    body = benchmark(post_batch)
    decoded = json.loads(body)
    assert decoded["count"] == len(WARM_NODES)
    assert all("error" not in entry for entry in decoded["results"])
    assert service.computes_total.value() == 0
