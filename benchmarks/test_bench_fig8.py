"""Benchmark F8 — regenerate Figure 8 (seed-set stability)."""

import numpy as np

from repro.experiments.fig8 import format_fig8, run_fig8

SETTINGS = (
    "Digg-S",
    "Twitter-S",
    "Flixster-G",
    "NetHEPT-W",
    "Slashdot-W",
    "Epinions-F",
)


def test_bench_fig8(benchmark, bench_infmax_config, save_result):
    results = benchmark.pedantic(
        lambda: run_fig8(
            bench_infmax_config, settings=SETTINGS, num_checkpoints=4
        ),
        rounds=1,
        iterations=1,
    )
    assert len(results) == len(SETTINGS)

    for r in results:
        assert np.all((r.cost_std >= 0) & (r.cost_std <= 1))
        assert np.all((r.cost_tc >= 0) & (r.cost_tc <= 1))

    # Paper shape 1: stability improves (cost decreases) as seed sets grow —
    # Section 5's observation 3 — for both methods, on most settings.
    decreasing = sum(
        1
        for r in results
        if r.cost_tc[-1] <= r.cost_tc[0] + 1e-9
        and r.cost_std[-1] <= r.cost_std[0] + 1e-9
    )
    assert decreasing >= len(results) / 2

    # Paper shape 2: InfMax_TC's seed sets are at least as stable as
    # InfMax_std's at a clear majority of checkpoints.
    fractions = [r.tc_more_stable_fraction for r in results]
    assert float(np.mean(fractions)) >= 0.5

    save_result("fig8", format_fig8(results))
