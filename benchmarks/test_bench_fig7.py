"""Benchmark F7 — regenerate Figure 7 (saturation analysis).

Paper protocol: the plain (non-lazy) greedy on the two smallest settings,
reporting MG_10/MG_1 from iteration 50 for ~30 iterations.  Scaled here to
start at iteration 5 for 10 iterations.
"""

import numpy as np

from repro.experiments.fig7 import format_fig7, run_fig7

SETTINGS = ("NetHEPT-F", "Twitter-S")


def test_bench_fig7(benchmark, bench_config, save_result):
    results = benchmark.pedantic(
        lambda: run_fig7(
            bench_config,
            settings=SETTINGS,
            first_iteration=5,
            num_iterations=10,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(results) == 2

    for r in results:
        assert np.all((r.std_curve.ratios >= 0) & (r.std_curve.ratios <= 1))
        assert np.all((r.tc_curve.ratios >= 0) & (r.tc_curve.ratios <= 1))
        # Paper shape: InfMax_std's ratio is already high in this window —
        # it can no longer distinguish the top-10 candidates well.
        assert float(r.std_curve.ratios.mean()) > 0.5

    # Paper shape: InfMax_std saturates no later than InfMax_TC on at least
    # one of the two settings (in the paper it is both, with a wide gap).
    early = [r for r in results if r.std_saturates_earlier(threshold=0.9)]
    assert early, "InfMax_std did not saturate earlier on any setting"

    save_result("fig7", format_fig7(results))
