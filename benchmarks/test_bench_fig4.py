"""Benchmark F4 — regenerate Figure 4 (per-node computation time)."""

from repro.experiments.fig4 import format_fig4, run_fig4

SETTINGS = ("Digg-S", "Twitter-S", "NetHEPT-W", "NetHEPT-F")


def test_bench_fig4(benchmark, bench_config, save_result):
    rows = benchmark.pedantic(
        lambda: run_fig4(bench_config, settings=SETTINGS, max_nodes=120),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == len(SETTINGS)

    for r in rows:
        # Paper shape: per-node time "almost always well under 1 second".
        # At our reduced scale the bulk should be far under that; allow a
        # loose envelope for slow CI machines.
        assert r.median_time_p90 < 1.0
        assert r.cost_time_p90 < 1.0
        # Heavy right tail: the max exceeds the median.
        assert r.median_time_max >= r.median_time_p50

    save_result("fig4", format_fig4(rows))
