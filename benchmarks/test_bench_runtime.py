"""Micro-benchmarks of the fault-tolerant runtime (repro.runtime).

Pins the costs the robustness layer adds to the hot paths it wraps:

* supervised parallel sampling vs the same sampling under an injected
  worker crash — recovery should cost one pool restart plus one chunk
  re-execution, not a rebuild;
* the disarmed fault-injection check, which sits on every chunk and append
  stage and must stay a near-free env lookup;
* checkpointed sphere sweeps vs plain sweeps (journaled shard writes), and
  the resume path that recovers every sphere from disk without recomputing.
"""

import pytest

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.runtime.faults import FaultPlan, FaultSpec, fault_scope, maybe_fire
from repro.runtime.supervisor import SupervisorConfig
from repro.store.build import FAULT_SITE_CHUNK, sampled_condensations

FAST_RETRY = SupervisorConfig(backoff_base=0.01, backoff_max=0.05)


@pytest.fixture(scope="module")
def graph():
    base = powerlaw_outdegree_digraph(300, mean_degree=6.0, seed=1)
    return assign_fixed(base, 0.1)


@pytest.fixture(scope="module")
def computer(graph):
    return TypicalCascadeComputer(CascadeIndex.build(graph, 16, seed=2))


def test_bench_supervised_parallel_sampling(benchmark, graph):
    conds = benchmark.pedantic(
        lambda: sampled_condensations(
            graph, 16, entropy=3, n_jobs=2, supervisor=FAST_RETRY
        ),
        rounds=3,
        iterations=1,
    )
    assert len(conds) == 16


def test_bench_sampling_with_injected_crash_recovery(benchmark, graph):
    plan = FaultPlan.of(FaultSpec(site=FAULT_SITE_CHUNK, kind="crash", key=0))

    def crashed_build():
        with fault_scope(plan):
            return sampled_condensations(
                graph, 16, entropy=3, n_jobs=2, supervisor=FAST_RETRY
            )

    conds = benchmark.pedantic(crashed_build, rounds=3, iterations=1)
    assert len(conds) == 16


def test_bench_disarmed_fault_check(benchmark):
    def disarmed_sweep(calls: int = 1000) -> int:
        for i in range(calls):
            maybe_fire("bench.site", key=i)
        return calls

    assert benchmark.pedantic(disarmed_sweep, rounds=5, iterations=1) == 1000


def test_bench_plain_sphere_sweep(benchmark, computer):
    store = benchmark.pedantic(
        lambda: computer.compute_store(), rounds=3, iterations=1
    )
    assert len(store) == computer.index.num_nodes


def test_bench_checkpointed_sphere_sweep(benchmark, computer, tmp_path_factory):
    counter = [0]

    def checkpointed():
        counter[0] += 1
        ck = tmp_path_factory.mktemp("ck") / f"run-{counter[0]}"
        return computer.compute_store(checkpoint_dir=ck, checkpoint_every=64)

    store = benchmark.pedantic(checkpointed, rounds=3, iterations=1)
    assert len(store) == computer.index.num_nodes


def test_bench_resume_from_full_checkpoint(benchmark, computer, tmp_path_factory):
    ck = tmp_path_factory.mktemp("ck") / "full"
    computer.compute_store(checkpoint_dir=ck, checkpoint_every=64)

    store = benchmark.pedantic(
        lambda: computer.compute_store(checkpoint_dir=ck, checkpoint_every=64),
        rounds=3,
        iterations=1,
    )
    assert len(store) == computer.index.num_nodes
