"""ETL benchmarks: ingest throughput and the O(nodes) memory contract.

The memory test is the ISSUE's acceptance check: a >=1M-edge generated
edge list must ingest with peak heap proportional to the node count and
the chunk size, **not** the file — the in-memory ``GraphBuilder`` path
holds a dict entry per arc (>=120 bytes each), so a 1.2M-arc file would
cost >=144 MB of heap.  The streaming pipeline spills arcs to disk and
keeps only O(nodes) counters plus fixed-size chunk buffers resident.

Both measurements run in subprocesses so ``ru_maxrss`` (which is
process-lifetime-monotonic) and ``tracemalloc`` see one ingest each.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

NUM_NODES = 60_000
NUM_EDGES = 1_200_000
SMALL_LINES = 17_001  # same file's prefix: the baseline working set

#: Conservative floor for a dict-of-arcs in-memory build: tuple key,
#: two non-cached ints and the dict slot cost well over 120 bytes/arc.
NAIVE_BYTES = NUM_EDGES * 120

_INGEST_SNIPPET = """
import resource, sys
from repro.data.ingest import ingest

trace = sys.argv[3] == "1"
if trace:
    import tracemalloc
    tracemalloc.start()
report = ingest(
    "local", file=sys.argv[1], root=sys.argv[2], name="bench-W",
    assignment="wc",
)
heap_peak = tracemalloc.get_traced_memory()[1] if trace else 0
rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
manifest = report.manifest
print(manifest["graph"]["num_edges"], manifest["parse"]["raw_edges"],
      heap_peak, rss_kib, round(report.timings["total_s"], 3))
"""


@pytest.fixture(scope="module")
def big_edge_file(tmp_path_factory):
    """A deterministic ~14 MB, 1.2M-edge SNAP-style edge list."""
    rng = np.random.default_rng(0)
    u = rng.integers(0, NUM_NODES, size=NUM_EDGES)
    v = (u + rng.integers(1, NUM_NODES, size=NUM_EDGES)) % NUM_NODES
    path = tmp_path_factory.mktemp("etl") / "big_edges.txt"
    with open(path, "w") as handle:
        handle.write("# generated benchmark graph\n")
        for lo in range(0, NUM_EDGES, 100_000):
            hi = lo + 100_000
            handle.write(
                "\n".join(f"{a} {b}" for a, b in zip(u[lo:hi], v[lo:hi]))
                + "\n"
            )
    return path


def run_ingest(edge_file: Path, root: Path, *, trace: bool):
    """(num_edges, raw_edges, heap_peak_bytes, rss_kib, wall_s)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    done = subprocess.run(
        [sys.executable, "-c", _INGEST_SNIPPET, str(edge_file), str(root),
         "1" if trace else "0"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert done.returncode == 0, done.stderr
    num_edges, raw_edges, heap_peak, rss_kib, wall = done.stdout.split()
    return int(num_edges), int(raw_edges), int(heap_peak), int(rss_kib), float(wall)


def test_bench_million_edge_ingest_memory(big_edge_file, tmp_path, save_result):
    """Peak heap and RSS stay far below the in-memory-builder floor."""
    small_file = tmp_path / "small_edges.txt"
    with open(big_edge_file) as handle:
        small_file.write_text(
            "".join(line for line, _ in zip(handle, range(SMALL_LINES)))
        )

    _, small_raw, small_heap, small_rss_kib, _ = run_ingest(
        small_file, tmp_path / "small", trace=True
    )
    _, _, _, small_rss_plain_kib, _ = run_ingest(
        small_file, tmp_path / "small2", trace=False
    )
    big_edges, big_raw, big_heap, _, _ = run_ingest(
        big_edge_file, tmp_path / "big", trace=True
    )
    _, _, _, big_rss_kib, wall = run_ingest(
        big_edge_file, tmp_path / "big2", trace=False
    )
    assert big_raw == NUM_EDGES and big_raw >= 1_000_000

    # Heap: O(nodes + chunk), not O(arcs).  A naive build would need
    # >= NAIVE_BYTES; 70x more arcs must not cost 70x more heap.
    assert big_heap < NAIVE_BYTES / 2
    assert big_heap < 12 * small_heap

    # RSS: the increment over the small-file baseline is dominated by
    # bounded scratch memmaps, far below the in-memory-builder floor.
    rss_increment = (big_rss_kib - small_rss_plain_kib) * 1024
    assert rss_increment < NAIVE_BYTES / 2

    file_mb = big_edge_file.stat().st_size / 1e6
    save_result(
        "bench_etl_memory",
        "ETL memory bench "
        f"({NUM_EDGES:,}-arc generated file, {file_mb:.1f} MB):\n"
        f"  ingest wall:        {wall:.2f} s "
        f"({big_raw / max(wall, 1e-9):,.0f} arcs/s)\n"
        f"  peak heap:          {big_heap / 1e6:.1f} MB "
        f"(baseline {small_heap / 1e6:.1f} MB at {small_raw:,} arcs; "
        f"naive in-memory floor ~{NAIVE_BYTES / 1e6:.0f} MB)\n"
        f"  peak RSS increment: {rss_increment / 1e6:.1f} MB "
        f"over the {small_rss_plain_kib / 1024:.0f} MB interpreter baseline",
    )


def test_bench_fixture_ingest_throughput(benchmark, tmp_path, save_result):
    """Offline-fixture ingest end to end: the BENCH_etl.json quantities."""
    from repro.data import ingest

    counter = iter(range(1_000_000))

    def one_ingest():
        return ingest(
            "epinions", root=tmp_path / f"run{next(counter)}",
            assignment="wc", offline=True,
        )

    report = benchmark.pedantic(one_ingest, rounds=3, iterations=1)
    parse = report.manifest["parse"]
    timings = report.timings
    pipeline_s = max(timings["parse_s"] + timings["assemble_s"], 1e-9)
    edges_per_s = parse["raw_edges"] / pipeline_s
    assert report.manifest["graph"]["num_edges"] > 0
    assert edges_per_s > 10_000  # streaming parser, not a line-at-a-time loop
    save_result(
        "bench_etl_throughput",
        "ETL throughput bench (epinions offline fixture):\n"
        f"  raw arcs:    {parse['raw_edges']:,} "
        f"({parse['duplicate_edges']} duplicates, "
        f"{parse['self_loops_dropped']} self-loops)\n"
        f"  parse+assemble: {pipeline_s:.3f} s ({edges_per_s:,.0f} arcs/s)\n"
        f"  total ingest:   {timings['total_s']:.3f} s",
    )
