"""Benchmark F6 — regenerate Figure 6 (InfMax_std vs InfMax_TC spread).

The paper's headline: InfMax_std wins early, the curves cross, InfMax_TC
wins for large seed sets.  InfMax_std here is the paper-faithful noisy
estimator (``infmax_std_mc``: independent Monte Carlo runs per marginal
estimate); the modern common-random-numbers greedy is reported alongside
as InfMax_std(CRN) — see EXPERIMENTS.md for why that distinction is the
crux of the reproduction.
"""

import numpy as np

from repro.datasets.registry import SETTING_NAMES
from repro.experiments.fig6 import format_fig6, run_fig6


def test_bench_fig6(benchmark, bench_infmax_config, save_result):
    results = benchmark.pedantic(
        lambda: run_fig6(
            bench_infmax_config,
            settings=SETTING_NAMES,
            mc_simulations=64,
            mc_pool=384,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(results) == 12

    final_gap_ratios = []
    for r in results:
        assert np.all(np.diff(r.spread_std) >= -1e-9)
        assert np.all(np.diff(r.spread_tc) >= -1e-9)
        final_gap_ratios.append(
            float(r.spread_tc[-1] / max(r.spread_std[-1], 1e-9))
        )

    # Paper shape 1: at large k, InfMax_TC matches or beats the classic
    # greedy on average across the 12 settings.
    assert float(np.mean(final_gap_ratios)) >= 0.97

    # Paper shape 2: the crossover happens on a meaningful set of settings
    # (the paper reports it on all 12 at k=200 and full-size graphs; at our
    # reduced scale we require a majority-ish share).
    wins = sum(1 for r in results if r.tc_wins_at_k)
    assert wins >= 4, f"InfMax_TC ahead at k on only {wins}/12 settings"

    # Reproduction finding: the variance-reduced CRN greedy is never much
    # worse than the noisy historical estimator — and usually better.
    crn_vs_mc = [
        float(r.spread_std_crn[-1] / max(r.spread_std[-1], 1e-9))
        for r in results
    ]
    assert float(np.mean(crn_vs_mc)) >= 1.0

    save_result("fig6", format_fig6(results))
