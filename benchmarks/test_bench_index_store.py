"""Micro-benchmarks of the persistent index store (repro.store).

Measures the store's four lifecycle costs — serial vs parallel build, save,
cold memory-mapped load, per-cascade query on a loaded index — and pins the
design's headline property: load time is set by the header parse plus a
handful of ``mmap`` calls, so it stays flat as the member-array payload
grows.
"""

import shutil
import time

import pytest

from repro.cascades.index import CascadeIndex
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.problearn.assign import assign_fixed
from repro.store import read_index, write_index


@pytest.fixture(scope="module")
def graph():
    base = powerlaw_outdegree_digraph(400, mean_degree=8.0, seed=1)
    return assign_fixed(base, 0.1)


@pytest.fixture(scope="module")
def index(graph):
    return CascadeIndex.build(graph, 32, seed=2)


@pytest.fixture(scope="module")
def store_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "idx"
    write_index(index, path)
    return path


def test_bench_build_serial(benchmark, graph):
    built = benchmark.pedantic(
        lambda: CascadeIndex.build(graph, 16, seed=3), rounds=3, iterations=1
    )
    assert built.num_worlds == 16


def test_bench_build_parallel(benchmark, graph):
    built = benchmark.pedantic(
        lambda: CascadeIndex.build(graph, 16, seed=3, n_jobs=2),
        rounds=3,
        iterations=1,
    )
    assert built.num_worlds == 16


def test_bench_save(benchmark, index, tmp_path):
    counter = iter(range(10**6))

    def save():
        return write_index(index, tmp_path / f"idx{next(counter)}")

    header = benchmark.pedantic(save, rounds=3, iterations=1)
    assert header.num_worlds == 32


def test_bench_cold_load(benchmark, store_path):
    loaded = benchmark(lambda: read_index(store_path))
    assert loaded.num_worlds == 32


def test_bench_loaded_cascade_query(benchmark, store_path):
    loaded = read_index(store_path)

    def extract():
        total = 0
        for node in range(0, 400, 13):
            total += loaded.cascade(node, node % loaded.num_worlds).size
        return total

    total = benchmark(extract)
    assert total > 0


def test_load_time_independent_of_payload(graph, tmp_path):
    """The zero-copy contract: opening a ~30x larger store must not be
    ~30x slower, because no member/DAG payload is read at open time."""
    small = CascadeIndex.build(graph, 4, seed=5)
    large = CascadeIndex.build(graph, 120, seed=5)
    small_path = tmp_path / "small"
    large_path = tmp_path / "large"
    write_index(small, small_path)
    write_index(large, large_path)

    def best_of(path, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            read_index(path)
            best = min(best, time.perf_counter() - start)
        return best

    best_of(small_path, repeats=1)  # warm the import/numpy paths
    t_small = best_of(small_path)
    t_large = best_of(large_path)
    payload_ratio = sum(
        f.stat().st_size for f in large_path.iterdir()
    ) / sum(f.stat().st_size for f in small_path.iterdir())
    assert payload_ratio > 10  # the comparison is meaningful
    # Generous bound: open cost may wobble with header size and FS cache,
    # but must stay far below the payload growth.
    assert t_large < t_small * 5, (
        f"load went from {t_small * 1e3:.2f}ms to {t_large * 1e3:.2f}ms for a "
        f"{payload_ratio:.0f}x payload — loading is not payload-independent"
    )
    shutil.rmtree(small_path)
    shutil.rmtree(large_path)
