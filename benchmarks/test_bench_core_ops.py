"""Micro-benchmarks of the core operations (multi-round pytest-benchmark).

These are conventional throughput benchmarks for the hot paths: index
construction, cascade extraction, Jaccard-median computation, SCC, and the
spread oracle.  They complement the one-shot table/figure benchmarks.
"""

import pytest

from repro.cascades.index import CascadeIndex
from repro.core.typical_cascade import TypicalCascadeComputer
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.graph.scc import strongly_connected_components
from repro.influence.spread import SpreadOracle
from repro.median.chierichetti import jaccard_median
from repro.median.samples import SampleCollection
from repro.problearn.assign import assign_fixed


@pytest.fixture(scope="module")
def graph():
    base = powerlaw_outdegree_digraph(400, mean_degree=8.0, seed=1)
    return assign_fixed(base, 0.1)


@pytest.fixture(scope="module")
def index(graph):
    return CascadeIndex.build(graph, 32, seed=2)


def test_bench_scc(benchmark, graph):
    comp, k = benchmark(strongly_connected_components, graph)
    assert k >= 1


def test_bench_index_build(benchmark, graph):
    index = benchmark.pedantic(
        lambda: CascadeIndex.build(graph, 16, seed=3), rounds=3, iterations=1
    )
    assert index.num_worlds == 16


def test_bench_cascade_extraction(benchmark, index):
    def extract():
        total = 0
        for node in range(0, 400, 13):
            total += index.cascade(node, node % index.num_worlds).size
        return total

    total = benchmark(extract)
    assert total > 0


def test_bench_all_cascade_sizes(benchmark, index):
    sizes = benchmark.pedantic(index.all_cascade_sizes, rounds=3, iterations=1)
    assert sizes.shape == (400, 32)


def test_bench_jaccard_median(benchmark, index):
    samples = SampleCollection(index.num_nodes, index.cascades(7))

    result = benchmark(jaccard_median, samples)
    assert result.cost <= 1.0


def test_bench_typical_cascade_single_node(benchmark, index):
    computer = TypicalCascadeComputer(index)
    sphere = benchmark(computer.compute, 11)
    assert sphere.size >= 1


def test_bench_spread_oracle_gain(benchmark, index):
    oracle = SpreadOracle(index)
    oracle.add_seed(0)
    gain = benchmark(oracle.marginal_gain, 5)
    assert gain >= 0.0
