"""Benchmark T2 — regenerate Table 2 (typical-cascade size statistics)."""

from repro.experiments.table2 import format_table2, run_table2

#: All nodes on graphs this size is feasible; cap for suite latency.
MAX_NODES = 200


def test_bench_table2(benchmark, bench_config, save_result):
    rows = benchmark.pedantic(
        lambda: run_table2(bench_config, max_nodes=MAX_NODES),
        rounds=1,
        iterations=1,
    )
    by_name = {r.setting: r for r in rows}
    assert len(rows) == 12

    # Paper shape 1: Goyal-learnt settings produce typical cascades at least
    # as large as Saito-learnt ones (Section 6.3, tied to Figure 3).
    for family in ("Digg", "Flixster", "Twitter"):
        assert (
            by_name[f"{family}-G"].avg_size
            >= by_name[f"{family}-S"].avg_size - 1.0
        )

    # Paper shape 2: fixed-0.1 dwarfs weighted-cascade on the supercritical
    # families (NetHEPT-F avg 1067 vs NetHEPT-W avg 3.0 in the paper).
    assert by_name["NetHEPT-F"].avg_size > 3 * by_name["NetHEPT-W"].avg_size
    assert by_name["Epinions-F"].avg_size > 3 * by_name["Epinions-W"].avg_size

    # Paper shape 3: WC settings stay near-critical — small average sizes.
    for name in ("NetHEPT-W", "Epinions-W", "Slashdot-W"):
        assert by_name[name].avg_size < 0.2 * by_name[name].num_nodes_evaluated

    # Sanity: sd and max dominate the mean as in every paper row.
    for r in rows:
        assert r.max_size >= r.avg_size

    save_result("table2", format_table2(rows))
