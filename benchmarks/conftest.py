"""Shared fixtures for the benchmark suite.

Every table/figure benchmark runs its experiment harness once (via
``benchmark.pedantic``), asserts the paper's qualitative *shape*, and writes
the formatted rows/series to ``results/`` so EXPERIMENTS.md can reference
them.  Absolute numbers are not expected to match the paper (different
hardware, pure-Python substrate, scaled datasets) — shapes are the
reproduction target (DESIGN.md §5).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: One shared configuration for the whole benchmark suite: big enough that
#: the paper shapes emerge, small enough that the suite finishes in minutes.
BENCH = ExperimentConfig(scale=0.35, num_samples=64, num_eval_samples=64, k=20)

#: The influence-maximisation benchmarks (Figures 6 and 8) need the k << n
#: regime with heavy-tailed cascade noise — a larger scale and deeper k.
BENCH_INFMAX = ExperimentConfig(
    scale=0.5, num_samples=64, num_eval_samples=128, k=40
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH


@pytest.fixture(scope="session")
def bench_infmax_config() -> ExperimentConfig:
    return BENCH_INFMAX


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write a named result artefact and echo it to the terminal."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def pytest_sessionfinish(session, exitstatus):
    """Refresh EXPERIMENTS.md from whatever artefacts exist after a run."""
    try:
        from repro.experiments.reporting import write_experiments_markdown

        if RESULTS_DIR.exists():
            write_experiments_markdown(
                RESULTS_DIR, RESULTS_DIR.parent / "EXPERIMENTS.md"
            )
    except Exception as exc:  # never fail the suite over reporting
        print(f"[reporting] could not refresh EXPERIMENTS.md: {exc}")
