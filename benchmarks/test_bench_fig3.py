"""Benchmark F3 — regenerate Figure 3 (CDFs of edge probabilities)."""

import numpy as np

from repro.experiments.fig3 import format_fig3, mean_probability_by_method, run_fig3


def test_bench_fig3(benchmark, bench_config, save_result):
    curves = benchmark.pedantic(
        lambda: run_fig3(bench_config), rounds=1, iterations=1
    )

    assert len(curves) == 9
    for c in curves:
        assert np.all(np.diff(c.cdf) >= 0)
        assert c.cdf[-1] == 1.0

    # The paper's qualitative finding: Goyal-learnt probabilities are larger
    # than Saito-learnt ones (Section 6.3 ties Table 2's sizes to this), and
    # the WC assignment produces the smallest probabilities overall.
    means = mean_probability_by_method(curves)
    assert means["Goyal"] >= means["Saito"]
    assert means["WC"] <= means["Saito"]

    save_result("fig3", format_fig3(curves))
