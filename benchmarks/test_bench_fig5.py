"""Benchmark F5 — regenerate Figure 5 (expected cost vs sphere size).

Paper claim (Section 6.3): "if we disregard the bucket of very small
cascades ... the larger the typical cascade, the more reliable it is
(smaller cost)", and "it is practically impossible to find a large typical
cascade with large cost".
"""


from repro.experiments.fig5 import format_fig5, run_fig5

SETTINGS = (
    "Digg-S",
    "Twitter-G",
    "Flixster-G",
    "Epinions-F",
    "NetHEPT-F",
    "Slashdot-W",
)

#: Spheres below this size count as the paper's "very small cascades".
SMALL = 8


def test_bench_fig5(benchmark, bench_config, save_result):
    buckets = benchmark.pedantic(
        lambda: run_fig5(bench_config, settings=SETTINGS, max_nodes=200),
        rounds=1,
        iterations=1,
    )
    assert buckets, "no size buckets produced"
    for b in buckets:
        assert 0.0 <= b.mean_cost <= b.max_cost <= 1.0

    # Claim 1: among the non-small buckets, cost decreases from the first
    # to the largest, for a majority of the settings that have at least two
    # such buckets.
    wins = considered = 0
    for setting in SETTINGS:
        rows = [
            b for b in buckets if b.setting == setting and b.size_lo >= SMALL
        ]
        if len(rows) < 2:
            continue
        considered += 1
        if rows[-1].mean_cost <= rows[0].mean_cost + 0.05:
            wins += 1
    assert considered == 0 or wins > considered / 2, (
        f"larger-is-cheaper held on only {wins}/{considered} settings"
    )

    # Claim 2: large spheres never carry near-maximal cost — for a majority
    # of settings with a genuinely large bucket, its max cost is below the
    # setting's overall max.
    wins2 = considered2 = 0
    for setting in SETTINGS:
        rows = [b for b in buckets if b.setting == setting]
        large = [b for b in rows if b.size_lo >= 128]
        if not large or len(rows) < 2:
            continue
        considered2 += 1
        overall_max = max(b.max_cost for b in rows)
        if large[-1].max_cost <= overall_max + 1e-9 and large[-1].max_cost < 0.85:
            wins2 += 1
    assert considered2 == 0 or wins2 > considered2 / 2

    save_result("fig5", format_fig5(buckets))
