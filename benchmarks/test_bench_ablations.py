"""Ablation benchmarks (DESIGN.md §6): sample count, transitive reduction,
and median algorithm choice."""

from repro.experiments.ablations import (
    format_ablation_rows,
    run_index_ablation,
    run_median_ablation,
    run_minhash_ablation,
    run_samples_ablation,
    run_sparsify_ablation,
)


def test_bench_samples_ablation(benchmark, bench_config, save_result):
    """Theorem 2 empirically: out-of-sample cost plateaus at small l."""
    rows = benchmark.pedantic(
        lambda: run_samples_ablation(
            "Digg-S",
            bench_config,
            sample_counts=(4, 8, 16, 32, 64),
            num_nodes=25,
            eval_samples=128,
        ),
        rounds=1,
        iterations=1,
    )
    assert [r.num_samples for r in rows] == [4, 8, 16, 32, 64]
    # The out-of-sample cost at l=64 is no worse than at l=4 (overfitting
    # shrinks with l), and the tail of the curve is flat (constant-sample
    # sufficiency).
    assert rows[-1].mean_out_of_sample_cost <= rows[0].mean_out_of_sample_cost + 0.02
    assert (
        abs(rows[-1].mean_out_of_sample_cost - rows[-2].mean_out_of_sample_cost)
        < 0.05
    )
    save_result(
        "ablation_samples",
        format_ablation_rows(rows, "Samples ablation (Theorem 2): cost vs l"),
    )


def test_bench_index_ablation(benchmark, bench_config, save_result):
    """Transitive reduction: strictly fewer DAG edges, correct extraction."""
    rows = benchmark.pedantic(
        lambda: run_index_ablation("NetHEPT-W", bench_config, num_queries=150),
        rounds=1,
        iterations=1,
    )
    by_flag = {r.reduced: r for r in rows}
    assert by_flag[True].total_dag_edges <= by_flag[False].total_dag_edges
    save_result(
        "ablation_index",
        format_ablation_rows(rows, "Index ablation: transitive reduction"),
    )


def test_bench_median_ablation(benchmark, bench_config, save_result):
    """Candidate-family comparison for the Jaccard median."""
    rows = benchmark.pedantic(
        lambda: run_median_ablation("Digg-S", bench_config, num_nodes=20),
        rounds=1,
        iterations=1,
    )
    by_name = {r.algorithm: r for r in rows}
    # The combined algorithm dominates its ingredients in-sample.
    assert by_name["chierichetti"].mean_cost <= by_name["best-of-samples"].mean_cost + 1e-9
    assert by_name["chierichetti"].mean_cost <= by_name["majority"].mean_cost + 1e-9
    # Local-search polish can only improve the cost.
    assert by_name["chierichetti+ls"].mean_cost <= by_name["chierichetti"].mean_cost + 1e-9
    save_result(
        "ablation_median",
        format_ablation_rows(rows, "Median-algorithm ablation"),
    )


def test_bench_sparsify_ablation(benchmark, bench_config, save_result):
    """Sphere fidelity degrades gracefully under sparsification."""
    rows = benchmark.pedantic(
        lambda: run_sparsify_ablation(
            "Digg-S", bench_config, fractions=(0.9, 0.7, 0.5), num_nodes=20
        ),
        rounds=1,
        iterations=1,
    )
    # More retained mass => closer spheres (weakly monotone).
    assert rows[0].fraction > rows[-1].fraction
    assert rows[0].mean_sphere_distance <= rows[-1].mean_sphere_distance + 0.1
    # Keeping 90% of arcs keeps spheres close.
    assert rows[0].mean_sphere_distance < 0.4
    save_result(
        "ablation_sparsify",
        format_ablation_rows(rows, "Sparsification ablation (sphere fidelity)"),
    )


def test_bench_minhash_ablation(benchmark, bench_config, save_result):
    """Sketch accuracy improves with the number of hash functions."""
    rows = benchmark.pedantic(
        lambda: run_minhash_ablation(
            "Flixster-G", bench_config, hash_counts=(32, 128, 512), num_nodes=10
        ),
        rounds=1,
        iterations=1,
    )
    assert rows[-1].mean_abs_cost_error <= rows[0].mean_abs_cost_error + 0.02
    assert rows[-1].mean_abs_cost_error < 0.08
    save_result(
        "ablation_minhash",
        format_ablation_rows(rows, "MinHash sketch ablation (cost accuracy)"),
    )
