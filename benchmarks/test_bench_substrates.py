"""Micro-benchmarks for the substrate layers: probability learning, world
sampling, reliability search, distance-constrained queries and sketches."""

import pytest

from repro.cascades.distance_reliability import monte_carlo_distance_reliability
from repro.cascades.index import CascadeIndex
from repro.cascades.reliability_search import reliability_search
from repro.graph.generators import powerlaw_outdegree_digraph
from repro.graph.sampling import sample_worlds
from repro.median.minhash import MinHasher
from repro.problearn.assign import assign_fixed
from repro.problearn.goyal import learn_goyal
from repro.problearn.logs import generate_action_log
from repro.problearn.saito import learn_saito


@pytest.fixture(scope="module")
def graph():
    base = powerlaw_outdegree_digraph(300, mean_degree=6.0, seed=1)
    return assign_fixed(base, 0.12)


@pytest.fixture(scope="module")
def log(graph):
    return generate_action_log(graph, 150, seed=2)


def test_bench_world_sampling(benchmark, graph):
    masks = benchmark(sample_worlds, graph, 64, 3)
    assert masks.shape == (64, graph.num_edges)


def test_bench_saito_em(benchmark, graph, log):
    fit = benchmark.pedantic(
        lambda: learn_saito(graph, log, max_iterations=25), rounds=2, iterations=1
    )
    assert fit.iterations >= 1


def test_bench_goyal(benchmark, graph, log):
    learnt = benchmark.pedantic(
        lambda: learn_goyal(graph, log), rounds=3, iterations=1
    )
    assert learnt.num_nodes == graph.num_nodes


def test_bench_reliability_search(benchmark, graph):
    index = CascadeIndex.build(graph, 64, seed=4)
    ring = benchmark(reliability_search, index, 0, 0.5)
    assert 0 in ring


def test_bench_distance_reliability(benchmark, graph):
    value = benchmark.pedantic(
        lambda: monte_carlo_distance_reliability(graph, 0, 10, 4, 200, seed=5),
        rounds=3,
        iterations=1,
    )
    assert 0.0 <= value <= 1.0


def test_bench_minhash_signatures(benchmark, graph):
    index = CascadeIndex.build(graph, 32, seed=6)
    cascades = index.cascades(0)
    hasher = MinHasher(128, seed=7)
    sigs = benchmark(hasher.signatures, cascades)
    assert sigs.shape == (32, 128)
